//! Architectural walker: executes a [`Program`], producing the
//! committed-path dynamic instruction stream the simulator consumes.

use crate::behavior::StreamCursor;
use crate::program::{BlockId, InstrKind, Program, TermClass, Terminator, INSTR_BYTES};
use crate::rng::Rng;

/// Maximum call-stack depth the walker tracks; deeper calls drop the oldest
/// frame (matching the generated programs, which never exceed depth 2).
const MAX_CALL_DEPTH: usize = 64;

/// A resolved dynamic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynOp {
    /// Computation.
    Alu,
    /// Load from a byte address.
    Load(u64),
    /// Store to a byte address.
    Store(u64),
}

/// One dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynInstr {
    /// Byte address.
    pub pc: u64,
    /// Resolved operation.
    pub op: DynOp,
    /// Dynamic distance to the first producer (0 = none).
    pub dep1: u8,
    /// Dynamic distance to the second producer (0 = none).
    pub dep2: u8,
    /// Whether this is the block's terminating control instruction.
    pub is_terminator: bool,
}

/// Ground truth for one executed basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynBlock {
    /// Static block id.
    pub id: BlockId,
    /// Starting byte address.
    pub start: u64,
    /// Number of instructions emitted.
    pub num_instrs: u32,
    /// Terminator class.
    pub class: TermClass,
    /// Whether the terminator was taken.
    pub taken: bool,
    /// Actual transfer target when taken (callee entry, return address…).
    pub taken_target: u64,
    /// Start address of the actual successor block.
    pub next_start: u64,
}

/// The committed-path executor. See module docs.
#[derive(Debug)]
pub struct Walker<'p> {
    program: &'p Program,
    rng: Rng,
    current: BlockId,
    /// Per-block loop counters (conditional backedges).
    loop_counters: Vec<u32>,
    /// Per-block rotation cursors for round-robin indirect dispatch.
    rotations: Vec<u32>,
    /// Per-stream cursors.
    cursors: Vec<StreamCursor>,
    call_stack: Vec<BlockId>,
    blocks_executed: u64,
    instrs_executed: u64,
}

impl<'p> Walker<'p> {
    /// Creates a walker at the program entry.
    pub fn new(program: &'p Program, seed: u64) -> Self {
        Self {
            program,
            rng: Rng::new(seed ^ 0x3A1C),
            current: program.entry,
            loop_counters: vec![0; program.blocks.len()],
            rotations: vec![0; program.blocks.len()],
            cursors: vec![StreamCursor::default(); program.streams.len()],
            call_stack: Vec::with_capacity(MAX_CALL_DEPTH),
            blocks_executed: 0,
            instrs_executed: 0,
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Dynamic blocks executed so far.
    pub fn blocks_executed(&self) -> u64 {
        self.blocks_executed
    }

    /// Dynamic instructions executed so far.
    pub fn instrs_executed(&self) -> u64 {
        self.instrs_executed
    }

    /// Executes the current block: appends its dynamic instructions to
    /// `out` (which is *not* cleared) and returns the block's ground truth,
    /// advancing to the successor.
    pub fn emit_block(&mut self, out: &mut Vec<DynInstr>) -> DynBlock {
        let block = self.program.block(self.current);
        let n = block.instrs.len();
        for (i, t) in block.instrs.iter().enumerate() {
            let op = match t.kind {
                InstrKind::Alu => DynOp::Alu,
                InstrKind::Load(s) => DynOp::Load(
                    self.program.streams[s as usize]
                        .next_addr(&mut self.cursors[s as usize], &mut self.rng),
                ),
                InstrKind::Store(s) => DynOp::Store(
                    self.program.streams[s as usize]
                        .next_addr(&mut self.cursors[s as usize], &mut self.rng),
                ),
            };
            out.push(DynInstr {
                pc: block.start + INSTR_BYTES * i as u64,
                op,
                dep1: t.dep1,
                dep2: t.dep2,
                is_terminator: i == n - 1,
            });
        }
        let (taken, taken_target, next) = self.resolve_terminator(block.id);
        let next_start = self.program.block(next).start;
        let dyn_block = DynBlock {
            id: block.id,
            start: block.start,
            num_instrs: n as u32,
            class: block.terminator.class(),
            taken,
            taken_target,
            next_start,
        };
        self.current = next;
        self.blocks_executed += 1;
        self.instrs_executed += n as u64;
        dyn_block
    }

    /// Resolves the terminator of `id`: `(taken, taken_target, successor)`.
    fn resolve_terminator(&mut self, id: BlockId) -> (bool, u64, BlockId) {
        let block = self.program.block(id);
        match &block.terminator {
            Terminator::Cond {
                target,
                fallthrough,
                behavior,
            } => {
                let taken =
                    behavior.next_outcome(&mut self.loop_counters[id as usize], &mut self.rng);
                let tgt_addr = self.program.block(*target).start;
                let next = if taken { *target } else { *fallthrough };
                (taken, tgt_addr, next)
            }
            Terminator::Jump { target } => (true, self.program.block(*target).start, *target),
            Terminator::Call { callee, ret_to } => {
                self.push_frame(*ret_to);
                (true, self.program.block(*callee).start, *callee)
            }
            Terminator::IndirectCall {
                targets,
                skew,
                rr_frac,
                ret_to,
            } => {
                let pick = if self.rng.chance(*rr_frac) {
                    let cursor = &mut self.rotations[id as usize];
                    let pick = *cursor as usize % targets.len();
                    *cursor = cursor.wrapping_add(1);
                    pick
                } else {
                    self.rng.zipf(targets.len(), *skew)
                };
                let callee = targets[pick];
                self.push_frame(*ret_to);
                (true, self.program.block(callee).start, callee)
            }
            Terminator::Return => {
                let ret = self.call_stack.pop().unwrap_or(self.program.entry);
                (true, self.program.block(ret).start, ret)
            }
            Terminator::FallThrough { next } => (false, self.program.block(*next).start, *next),
        }
    }

    fn push_frame(&mut self, ret_to: BlockId) {
        if self.call_stack.len() >= MAX_CALL_DEPTH {
            self.call_stack.remove(0);
        }
        self.call_stack.push(ret_to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_program, ProgramShape};

    #[test]
    fn emits_matching_instruction_counts() {
        let p = build_program(&ProgramShape::tiny());
        let mut w = Walker::new(&p, 1);
        let mut buf = Vec::new();
        for _ in 0..100 {
            buf.clear();
            let b = w.emit_block(&mut buf);
            assert_eq!(buf.len(), b.num_instrs as usize);
            assert!(buf.last().unwrap().is_terminator);
            assert_eq!(buf[0].pc, b.start);
        }
        assert_eq!(w.blocks_executed(), 100);
    }

    #[test]
    fn successor_matches_ground_truth() {
        let p = build_program(&ProgramShape::tiny());
        let mut w = Walker::new(&p, 1);
        let mut buf = Vec::new();
        let mut prev_next = None;
        for _ in 0..500 {
            buf.clear();
            let b = w.emit_block(&mut buf);
            if let Some(expect) = prev_next {
                assert_eq!(b.start, expect, "walker jumped to unexpected block");
            }
            if b.taken {
                assert_eq!(b.taken_target, b.next_start);
            }
            prev_next = Some(b.next_start);
        }
    }

    #[test]
    fn deterministic_across_walkers() {
        let p = build_program(&ProgramShape::tiny());
        let mut a = Walker::new(&p, 7);
        let mut b = Walker::new(&p, 7);
        let (mut ba, mut bb) = (Vec::new(), Vec::new());
        for _ in 0..300 {
            ba.clear();
            bb.clear();
            assert_eq!(a.emit_block(&mut ba), b.emit_block(&mut bb));
            assert_eq!(ba, bb);
        }
    }

    #[test]
    fn calls_and_returns_balance() {
        let p = build_program(&ProgramShape::tiny());
        let mut w = Walker::new(&p, 3);
        let mut buf = Vec::new();
        let mut depth: i64 = 0;
        let mut max_depth = 0;
        for _ in 0..5000 {
            buf.clear();
            let b = w.emit_block(&mut buf);
            match b.class {
                TermClass::Call | TermClass::IndirectCall => depth += 1,
                TermClass::Return => depth -= 1,
                _ => {}
            }
            max_depth = max_depth.max(depth);
            assert!(depth >= 0, "return without call");
        }
        assert!(max_depth >= 1, "program never called anything");
        assert!(max_depth <= 8, "call depth ran away: {max_depth}");
    }

    #[test]
    fn visits_multiple_services() {
        let shape = ProgramShape::tiny();
        let p = build_program(&shape);
        let mut w = Walker::new(&p, 5);
        let mut buf = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5000 {
            buf.clear();
            seen.insert(w.emit_block(&mut buf).id);
        }
        // Should cover a healthy fraction of static blocks.
        assert!(
            seen.len() * 2 > p.blocks.len(),
            "visited {}/{}",
            seen.len(),
            p.blocks.len()
        );
    }

    #[test]
    fn loads_resolve_to_configured_regions() {
        let p = build_program(&ProgramShape::tiny());
        let mut w = Walker::new(&p, 9);
        let mut buf = Vec::new();
        let mut loads = 0;
        for _ in 0..2000 {
            buf.clear();
            w.emit_block(&mut buf);
            for i in &buf {
                if let DynOp::Load(a) | DynOp::Store(a) = i.op {
                    loads += 1;
                    assert!(a >= crate::builder::HOT_BASE, "data addr in code region");
                }
            }
        }
        assert!(loads > 500, "too few memory ops: {loads}");
    }
}
