//! Program generation: dispatcher + services + helpers.
//!
//! Generated programs mimic request-driven servers (§5.3's workload class):
//!
//! * a small, hot **dispatcher** loop (short-reuse lines, L1I-resident);
//! * `num_services` **service routines**, selected per request through an
//!   indirect call with Zipf-skewed popularity — each routine is a long
//!   chain of blocks, so a routine's lines recur only when its request type
//!   recurs (long-reuse lines, the ones that miss in L2 and starve decode);
//! * shared **helper** functions called from service bodies (mid-reuse).
//!
//! Conditional branches mix predictable forward skips, loop backedges, and
//! a configurable fraction of ~50/50 "hard" branches that defeat TAGE and
//! periodically reset FDIP's run-ahead (where starvation concentrates, §3).

use crate::behavior::{BranchBehavior, DataStream};
use crate::program::{
    BasicBlock, BlockId, InstrKind, InstrTemplate, Program, Terminator, CODE_BASE, INSTR_BYTES,
};
use crate::rng::Rng;

/// Base byte address of the hot data region.
pub const HOT_BASE: u64 = 0x1000_0000;
/// Base byte address of the L2-warm data region.
pub const WARM_BASE: u64 = 0x2000_0000;
/// Base byte address of the streaming data region.
pub const STREAM_BASE: u64 = 0x3000_0000;

/// Structural knobs for program generation (derived from a
/// [`crate::profiles::Profile`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramShape {
    /// Total code footprint in KiB (Figure 4 knob).
    pub code_kb: u32,
    /// Number of distinct service routines (request types).
    pub num_services: u32,
    /// Zipf skew of request popularity (0 = uniform).
    pub service_skew: f64,
    /// Fraction of dispatches that take the *next service in rotation*
    /// rather than a random one (cyclic code reuse; see program docs).
    pub service_rotation: f64,
    /// How many times a request executes its service body (an outer loop
    /// around the routine): > 1 adds intra-request code reuse, lowering
    /// instruction MPKI toward server-workload levels.
    pub service_repeat: u32,
    /// Blocks in the dispatcher loop.
    pub dispatcher_blocks: u32,
    /// Number of shared helper functions.
    pub helper_funcs: u32,
    /// Blocks per helper function.
    pub helper_blocks: u32,
    /// Average instructions per block (4..=16).
    pub avg_block_instrs: u32,
    /// Probability a service block ends in a conditional branch.
    pub cond_frac: f64,
    /// Fraction of conditional branches that are ~50/50 hard.
    pub hard_branch_frac: f64,
    /// Probability a service block starts a short loop backedge.
    pub loop_frac: f64,
    /// Trip count of those loops.
    pub loop_trip: u32,
    /// Probability a service block calls a helper.
    pub call_frac: f64,
    /// Per-instruction load probability.
    pub load_frac: f64,
    /// Per-instruction store probability.
    pub store_frac: f64,
    /// Hot data region size (KiB) — L1D-resident.
    pub hot_kb: u32,
    /// Warm data region size (KiB) — L2-contending.
    pub warm_kb: u32,
    /// Streaming data region size (KiB) — DRAM-bound.
    pub stream_kb: u32,
    /// Relative weight of hot / warm / stream for each memory op.
    pub data_weights: (f64, f64, f64),
    /// Generation seed.
    pub seed: u64,
}

impl ProgramShape {
    /// A small, fast-to-simulate shape for tests.
    pub fn tiny() -> Self {
        Self {
            code_kb: 16,
            num_services: 4,
            service_skew: 0.5,
            service_rotation: 0.5,
            service_repeat: 2,
            dispatcher_blocks: 4,
            helper_funcs: 2,
            helper_blocks: 3,
            avg_block_instrs: 8,
            cond_frac: 0.4,
            hard_branch_frac: 0.1,
            loop_frac: 0.08,
            loop_trip: 4,
            call_frac: 0.08,
            load_frac: 0.25,
            store_frac: 0.1,
            hot_kb: 8,
            warm_kb: 64,
            stream_kb: 256,
            data_weights: (0.6, 0.3, 0.1),
            seed: 1,
        }
    }
}

/// Builds a [`Program`] from the shape. Deterministic in `shape.seed`.
///
/// # Panics
///
/// Panics (debug assertions) if the generated program fails
/// [`Program::validate`]; this indicates a builder bug.
pub fn build_program(shape: &ProgramShape) -> Program {
    let mut rng = Rng::new(shape.seed ^ 0xB01D);
    let streams = vec![
        DataStream::Hot {
            base: HOT_BASE,
            bytes: u64::from(shape.hot_kb.max(1)) * 1024,
        },
        DataStream::Warm {
            base: WARM_BASE,
            bytes: u64::from(shape.warm_kb.max(1)) * 1024,
        },
        DataStream::Stream {
            base: STREAM_BASE,
            bytes: u64::from(shape.stream_kb.max(1)) * 1024,
        },
    ];

    // --- Block budget ---------------------------------------------------
    let total_instrs = u64::from(shape.code_kb) * 1024 / INSTR_BYTES;
    let avg = shape.avg_block_instrs.clamp(4, 16) as u64;
    let total_blocks = (total_instrs / avg).max(16) as u32;
    let dispatcher = shape.dispatcher_blocks.clamp(3, 16);
    let helpers = shape.helper_funcs;
    let helper_blocks = shape.helper_blocks.max(2);
    let helper_total = helpers * helper_blocks;
    let services = shape.num_services.max(1);
    let service_blocks =
        ((total_blocks.saturating_sub(dispatcher + helper_total)) / services).max(4);

    // Id layout: [0, dispatcher) dispatcher; then helpers; then services.
    let helper_base = dispatcher;
    let service_base = helper_base + helper_total;
    let helper_entry = |f: u32| helper_base + f * helper_blocks;
    let service_entry = |s: u32| service_base + s * service_blocks;
    let n_blocks = service_base + services * service_blocks;

    let mut blocks: Vec<BasicBlock> = Vec::with_capacity(n_blocks as usize);
    let mut addr = CODE_BASE;
    let make_instrs = |rng: &mut Rng| -> Vec<InstrTemplate> {
        let span = 7.min(avg as i64 - 3).max(1) as u64;
        let len = (avg as i64 - 3 + rng.below(2 * span + 1) as i64).clamp(3, 16) as usize;
        (0..len)
            .map(|slot| {
                let r = rng.f64();
                // The last slot is the block's control-transfer instruction
                // and must not be a memory op.
                let kind = if slot + 1 == len {
                    InstrKind::Alu
                } else if r < shape.load_frac {
                    let (wh, ww, _ws) = shape.data_weights;
                    let pick = rng.f64();
                    if pick < wh {
                        InstrKind::Load(0)
                    } else if pick < wh + ww {
                        InstrKind::Load(1)
                    } else {
                        InstrKind::Load(2)
                    }
                } else if r < shape.load_frac + shape.store_frac {
                    let (wh, ww, _ws) = shape.data_weights;
                    let pick = rng.f64();
                    if pick < wh {
                        InstrKind::Store(0)
                    } else if pick < wh + ww {
                        InstrKind::Store(1)
                    } else {
                        InstrKind::Store(2)
                    }
                } else {
                    InstrKind::Alu
                };
                InstrTemplate {
                    kind,
                    dep1: 1 + rng.below(5) as u8,
                    dep2: if rng.chance(0.3) {
                        2 + rng.below(8) as u8
                    } else {
                        0
                    },
                }
            })
            .collect()
    };
    let push_block = |instrs: Vec<InstrTemplate>,
                      term: Terminator,
                      blocks: &mut Vec<BasicBlock>,
                      addr: &mut u64| {
        let id = blocks.len() as BlockId;
        let start = *addr;
        *addr += INSTR_BYTES * instrs.len() as u64;
        blocks.push(BasicBlock {
            id,
            start,
            instrs,
            terminator: term,
        });
    };

    // --- Dispatcher -----------------------------------------------------
    // Chain 0 -> 1 -> ... with a short spin loop, ending in the indirect
    // request dispatch that returns to block 0.
    for i in 0..dispatcher {
        let term = if i == dispatcher - 1 {
            Terminator::IndirectCall {
                targets: (0..services).map(service_entry).collect(),
                skew: shape.service_skew,
                rr_frac: shape.service_rotation,
                ret_to: 0,
            }
        } else if i == dispatcher - 2 && i % LAYOUT_GRANULE != LAYOUT_GRANULE - 1 {
            Terminator::Cond {
                target: 0,
                fallthrough: i + 1,
                behavior: BranchBehavior::Loop { trip: 2 },
            }
        } else {
            Terminator::FallThrough { next: i + 1 }
        };
        push_block(make_instrs(&mut rng), term, &mut blocks, &mut addr);
    }

    // --- Helpers ----------------------------------------------------------
    for f in 0..helpers {
        let base = helper_entry(f);
        for j in 0..helper_blocks {
            let id = base + j;
            let term = if j == helper_blocks - 1 {
                Terminator::Return
            } else if j == 1 && helper_blocks > 2 && id % LAYOUT_GRANULE != LAYOUT_GRANULE - 1 {
                Terminator::Cond {
                    target: base + j - 1,
                    fallthrough: base + j + 1,
                    behavior: BranchBehavior::Loop {
                        trip: 2 + rng.below(3) as u32,
                    },
                }
            } else {
                Terminator::FallThrough { next: base + j + 1 }
            };
            push_block(make_instrs(&mut rng), term, &mut blocks, &mut addr);
        }
    }

    // --- Services ---------------------------------------------------------
    for s in 0..services {
        let base = service_entry(s);
        // Place the request's outer loop on the last alignment-eligible
        // block before the return.
        let outer_loop_j = (service_blocks.saturating_sub(4)..service_blocks - 1)
            .rev()
            .find(|j| (base + j) % LAYOUT_GRANULE != LAYOUT_GRANULE - 1);
        for j in 0..service_blocks {
            let id = base + j;
            let next = id + 1;
            let term = if j == service_blocks - 1 {
                Terminator::Return
            } else if Some(j) == outer_loop_j && shape.service_repeat > 1 {
                Terminator::Cond {
                    target: base,
                    fallthrough: next,
                    behavior: BranchBehavior::Loop {
                        trip: shape.service_repeat,
                    },
                }
            } else if id % LAYOUT_GRANULE == LAYOUT_GRANULE - 1 {
                // Granule-ending blocks may not rely on physical adjacency
                // (the layout shuffle below separates granules): chain with
                // an explicit jump or a helper call.
                if rng.chance(shape.call_frac) && helpers > 0 {
                    Terminator::Call {
                        callee: helper_entry(rng.below(u64::from(helpers)) as u32),
                        ret_to: next,
                    }
                } else {
                    Terminator::Jump { target: next }
                }
            } else {
                let roll = rng.f64();
                if roll < shape.loop_frac && j >= 1 {
                    Terminator::Cond {
                        target: id - 1,
                        fallthrough: next,
                        behavior: BranchBehavior::Loop {
                            trip: shape.loop_trip.max(2),
                        },
                    }
                } else if roll < shape.loop_frac + shape.call_frac && helpers > 0 {
                    Terminator::Call {
                        callee: helper_entry(rng.below(u64::from(helpers)) as u32),
                        ret_to: next,
                    }
                } else if roll < shape.loop_frac + shape.call_frac + shape.cond_frac {
                    // Forward skip within the service.
                    let skip = 2 + rng.below(4) as u32;
                    let target = (id + skip).min(base + service_blocks - 1);
                    let taken_prob = if rng.chance(shape.hard_branch_frac) {
                        0.5
                    } else if rng.chance(0.5) {
                        0.03
                    } else {
                        0.97
                    };
                    Terminator::Cond {
                        target,
                        fallthrough: next,
                        behavior: BranchBehavior::Biased { taken_prob },
                    }
                } else {
                    Terminator::FallThrough { next }
                }
            };
            push_block(make_instrs(&mut rng), term, &mut blocks, &mut addr);
        }
    }

    // --- Layout shuffle ---------------------------------------------------
    // Real binaries interleave functions across the address space; without
    // this, generated code would be one giant sequential scan that a
    // next-line prefetcher covers perfectly. Granules of LAYOUT_GRANULE
    // consecutive blocks keep their relative order (intra-function
    // locality); granule order is shuffled, and fall-throughs that are no
    // longer physically adjacent become explicit jumps.
    shuffle_layout(&mut blocks, &mut rng);

    let mut program = Program {
        blocks,
        entry: 0,
        streams,
        by_start: Default::default(),
    };
    program.index();
    debug_assert_eq!(program.validate(), Ok(()));
    program
}

/// Number of consecutive blocks kept physically adjacent by the layout
/// shuffle (intra-function spatial locality).
pub const LAYOUT_GRANULE: u32 = 4;

/// Shuffles block addresses granule-wise and converts non-adjacent
/// fall-throughs into jumps. Block ids (and therefore all CFG edges) are
/// unchanged; only `start` addresses move.
fn shuffle_layout(blocks: &mut [BasicBlock], rng: &mut Rng) {
    let g = LAYOUT_GRANULE as usize;
    let n_granules = blocks.len().div_ceil(g);
    // Keep granule 0 (dispatcher head) first so the entry stays hot and
    // early; Fisher-Yates over the rest.
    let mut order: Vec<usize> = (0..n_granules).collect();
    for i in (2..n_granules).rev() {
        // j uniform in [1, i]: granule 0 stays first.
        let j = 1 + rng.below(i as u64) as usize;
        order.swap(i, j);
    }
    // Reassign addresses in the shuffled granule order.
    let mut addr = CODE_BASE;
    for &gi in &order {
        for b in blocks.iter_mut().skip(gi * g).take(g) {
            b.start = addr;
            addr += INSTR_BYTES * b.instrs.len() as u64;
        }
    }
    // Fix up adjacency-dependent terminators.
    let ends: Vec<u64> = blocks.iter().map(|b| b.end()).collect();
    let starts: Vec<u64> = blocks.iter().map(|b| b.start).collect();
    for i in 0..blocks.len() {
        let fixup = match blocks[i].terminator {
            Terminator::FallThrough { next } if starts[next as usize] != ends[i] => {
                Some(Terminator::Jump { target: next })
            }
            _ => None,
        };
        if let Some(term) = fixup {
            blocks[i].terminator = term;
        }
        if let Terminator::Cond { fallthrough, .. } = blocks[i].terminator {
            debug_assert_eq!(
                starts[fallthrough as usize], ends[i],
                "conditional fall-through must stay physically adjacent"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_program_is_valid() {
        let p = build_program(&ProgramShape::tiny());
        assert_eq!(p.validate(), Ok(()));
        assert!(p.blocks.len() >= 16);
    }

    #[test]
    fn footprint_tracks_code_kb() {
        for kb in [16u32, 64, 256, 1024] {
            let shape = ProgramShape {
                code_kb: kb,
                num_services: 8,
                ..ProgramShape::tiny()
            };
            let p = build_program(&shape);
            let bytes = p.code_bytes();
            let target = u64::from(kb) * 1024;
            // Within 30% of the requested footprint.
            let rel_err = (bytes as f64 - target as f64).abs() / target as f64;
            assert!(rel_err < 0.3, "kb={kb}: bytes={bytes} target={target}");
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = build_program(&ProgramShape::tiny());
        let b = build_program(&ProgramShape::tiny());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = build_program(&ProgramShape::tiny());
        let b = build_program(&ProgramShape {
            seed: 2,
            ..ProgramShape::tiny()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn dispatcher_ends_with_indirect_dispatch() {
        let shape = ProgramShape::tiny();
        let p = build_program(&shape);
        let dispatch = &p.blocks[(shape.dispatcher_blocks.clamp(3, 16) - 1) as usize];
        match &dispatch.terminator {
            Terminator::IndirectCall { targets, .. } => {
                assert_eq!(targets.len(), shape.num_services as usize);
            }
            other => panic!("expected indirect dispatch, got {other:?}"),
        }
    }

    #[test]
    fn layout_is_packed_granule_wise_and_entry_first() {
        let p = build_program(&ProgramShape::tiny());
        // Entry granule stays at the base address.
        assert_eq!(p.blocks[0].start, CODE_BASE);
        // Within each granule, blocks are physically contiguous.
        let g = LAYOUT_GRANULE as usize;
        for chunk in p.blocks.chunks(g) {
            for w in chunk.windows(2) {
                assert_eq!(w[0].end(), w[1].start, "granule blocks contiguous");
            }
        }
        // The address space is packed overall: total span == total bytes.
        let max_end = p.blocks.iter().map(|b| b.end()).max().unwrap();
        assert_eq!(max_end - CODE_BASE, p.code_bytes());
    }

    #[test]
    fn shuffle_preserves_conditional_adjacency() {
        for seed in 1..6u64 {
            let p = build_program(&ProgramShape {
                seed,
                code_kb: 64,
                ..ProgramShape::tiny()
            });
            for b in &p.blocks {
                if let crate::program::Terminator::Cond { fallthrough, .. } = b.terminator {
                    assert_eq!(
                        p.blocks[fallthrough as usize].start,
                        b.end(),
                        "cond fall-through adjacency (seed {seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn shuffle_scatters_consecutive_granules() {
        let p = build_program(&ProgramShape {
            code_kb: 256,
            ..ProgramShape::tiny()
        });
        // Most id-consecutive granule pairs should not be address-adjacent.
        let g = LAYOUT_GRANULE as usize;
        let mut adjacent = 0;
        let mut total = 0;
        for i in (0..p.blocks.len().saturating_sub(2 * g)).step_by(g) {
            total += 1;
            if p.blocks[i + g].start == p.blocks[i + g - 1].end() {
                adjacent += 1;
            }
        }
        assert!(
            adjacent * 4 < total,
            "layout not shuffled: {adjacent}/{total} granule pairs adjacent"
        );
    }

    #[test]
    fn streams_cover_three_regions() {
        let p = build_program(&ProgramShape::tiny());
        assert_eq!(p.streams.len(), 3);
        let (b0, _) = p.streams[0].region();
        let (b1, _) = p.streams[1].region();
        let (b2, _) = p.streams[2].region();
        assert_eq!((b0, b1, b2), (HOT_BASE, WARM_BASE, STREAM_BASE));
    }
}
