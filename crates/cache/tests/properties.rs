//! Property-based tests for the cache substrate.

use proptest::prelude::*;

use emissary_cache::cache::Cache;
use emissary_cache::config::{CacheConfig, HierarchyConfig};
use emissary_cache::hierarchy::Hierarchy;
use emissary_cache::line::LineKind;
use emissary_cache::policy::{AccessInfo, PlruTree, PolicyKind};

/// Reference model: a plain set of resident lines per (set, line) — used to
/// check the cache's residency bookkeeping against arbitrary op sequences.
#[derive(Debug, Clone)]
enum Op {
    Access(u64),
    Invalidate(u64),
    SetPriority(u64),
}

fn op_strategy(max_line: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..max_line).prop_map(Op::Access),
        1 => (0..max_line).prop_map(Op::Invalidate),
        1 => (0..max_line).prop_map(Op::SetPriority),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any op sequence: at most `ways` valid lines per set, a line
    /// just accessed is resident, and `valid_lines` matches the per-set sum.
    #[test]
    fn cache_residency_invariants(
        ops in proptest::collection::vec(op_strategy(256), 1..400),
        kind_seed in 0u64..1000,
    ) {
        let cfg = CacheConfig::new("t", 8 * 4 * 64, 4, 1);
        let policy = PolicyKind::TreePlru.build(cfg.sets(), cfg.ways, kind_seed);
        let mut cache = Cache::new(cfg, policy);
        let info = AccessInfo::demand(LineKind::Instruction);
        for op in &ops {
            match *op {
                Op::Access(line) => {
                    if cache.lookup(line, &info).is_none() {
                        cache.fill(line, &info);
                    }
                    prop_assert!(cache.contains(line));
                }
                Op::Invalidate(line) => {
                    cache.invalidate(line);
                    prop_assert!(!cache.contains(line));
                }
                Op::SetPriority(line) => {
                    let found = cache.set_priority(line, true);
                    prop_assert_eq!(found, cache.contains(line));
                }
            }
            for set in 0..cache.sets() {
                let valid = cache.set_slice(set).iter().filter(|l| l.valid).count();
                prop_assert!(valid <= cache.ways());
            }
        }
        let total: usize = (0..cache.sets())
            .map(|s| cache.set_slice(s).iter().filter(|l| l.valid).count())
            .sum();
        prop_assert_eq!(total, cache.valid_lines());
    }

    /// True LRU never evicts the most recently accessed line of a set.
    #[test]
    fn lru_never_evicts_most_recent(
        accesses in proptest::collection::vec(0u64..64, 2..200),
    ) {
        let cfg = CacheConfig::new("t", 4 * 4 * 64, 4, 1);
        let policy = PolicyKind::TrueLru.build(cfg.sets(), cfg.ways, 1);
        let mut cache = Cache::new(cfg, policy);
        let info = AccessInfo::demand(LineKind::Data);
        let mut last: Option<u64> = None;
        for &line in &accesses {
            if cache.lookup(line, &info).is_none() {
                let out = cache.fill(line, &info);
                if let (Some(prev), Some(evicted)) = (last, out.evicted) {
                    prop_assert_ne!(
                        evicted.tag, prev,
                        "evicted the immediately preceding access"
                    );
                }
            }
            last = Some(line);
        }
    }

    /// PLRU tree: the victim is always inside the eligibility mask, and a
    /// just-touched way is never the victim while >= 2 ways are eligible.
    #[test]
    fn plru_victim_respects_mask(
        touches in proptest::collection::vec(0usize..16, 1..200),
        mask in 1u32..0xffff,
    ) {
        let mut tree = PlruTree::new(16);
        for &w in &touches {
            tree.touch(w);
            if mask.count_ones() >= 2 {
                if let Some(v) = tree.victim_masked(mask) {
                    prop_assert!(mask & (1 << v) != 0, "victim outside mask");
                    if mask & (1 << w) != 0 && mask.count_ones() >= 2 {
                        prop_assert_ne!(v, w, "victim equals just-touched way");
                    }
                }
            }
        }
        let v = tree.victim_masked(mask);
        prop_assert!(v.is_some());
        prop_assert!(mask & (1 << v.unwrap()) != 0);
    }

    /// Hierarchy invariants hold under arbitrary interleaved traffic:
    /// inclusion (L1 ⊆ L2) and L2/L3 exclusivity.
    #[test]
    fn hierarchy_invariants_under_traffic(
        ops in proptest::collection::vec((0u64..3, 0u64..128), 1..300),
        seed in 0u64..100,
    ) {
        let cfg = HierarchyConfig {
            l1i: CacheConfig::new("l1i", 2 * 2 * 64, 2, 2),
            l1d: CacheConfig::new("l1d", 2 * 2 * 64, 2, 2),
            l2: CacheConfig::new("l2", 4 * 4 * 64, 4, 12),
            l3: CacheConfig::new("l3", 8 * 4 * 64, 4, 32),
            dram_latency: 100,
            l1d_nlp: seed % 2 == 0,
            l2_nlp: seed % 3 == 0,
            l3_nlp: seed % 5 == 0,
            ideal_l2_instr: false,
            seed,
        };
        let policy = PolicyKind::TreePlru.build(cfg.l2.sets(), cfg.l2.ways, seed);
        let mut h = Hierarchy::with_l2_policy(cfg, policy);
        let mut now = 0;
        for &(kind, addr) in &ops {
            now += 5;
            match kind {
                0 => {
                    h.access_instr(addr, now, false);
                }
                1 => {
                    h.access_data(0x1000 + addr, now, false, false);
                }
                _ => {
                    h.access_data(0x1000 + addr, now, true, false);
                }
            }
        }
        prop_assert!(h.check_inclusion(), "inclusion violated");
        prop_assert!(h.check_exclusivity(), "exclusivity violated");
    }

    /// `ready_at` is monotone in the serving level: an access can never be
    /// ready before its hit latency, and a memory access never beats L2.
    #[test]
    fn access_latency_sane(addrs in proptest::collection::vec(0u64..512, 1..200)) {
        let cfg = HierarchyConfig::alderlake_like();
        let policy = PolicyKind::TreePlru.build(cfg.l2.sets(), cfg.l2.ways, 1);
        let l1_lat = cfg.l1i.hit_latency;
        let mut h = Hierarchy::with_l2_policy(cfg, policy);
        let mut now = 0;
        for &a in &addrs {
            now += 200; // past any outstanding miss
            let m = h.access_instr(a, now, false);
            prop_assert!(m.ready_at >= now + l1_lat);
            prop_assert!(m.ready_at <= now + 150);
        }
    }
}
