//! Set-associative cache and hierarchy substrate for the EMISSARY
//! reproduction (ISCA 2023).
//!
//! This crate provides everything the paper's machine model (Table 4) needs
//! below the core pipeline:
//!
//! * [`cache::Cache`] — a set-associative cache with per-line metadata
//!   (validity, dirtiness, instruction/data kind, the EMISSARY priority bit,
//!   the L2 "served-from-L3" SFL bit) and a pluggable
//!   [`policy::ReplacementPolicy`].
//! * [`policy`] — the prior-work replacement policies the paper compares
//!   against: true LRU, tree pseudo-LRU (TPLRU), the `M:` insertion-treatment
//!   family (LIP, BIP, `M:S&E`, …), SRRIP/BRRIP/DRRIP, PDP and DCLIP. The
//!   EMISSARY `P(N)` family itself lives in the `emissary-core` crate, which
//!   implements the same trait.
//! * [`hierarchy::Hierarchy`] — the three-level hierarchy of the paper:
//!   private L1I/L1D, a unified *inclusive* L2, and an *exclusive victim* L3
//!   running DRRIP with the SFL insertion hint, plus next-line prefetchers
//!   and the §5.6 "zero-cycle-miss ideal L2 instruction cache" mode.
//! * [`rng::XorShift64`] — the deterministic RNG used on all simulated
//!   hardware paths (e.g. the `R(1/32)` random selection signal).
//!
//! # Example
//!
//! ```
//! use emissary_cache::config::CacheConfig;
//! use emissary_cache::cache::Cache;
//! use emissary_cache::line::LineKind;
//! use emissary_cache::policy::{AccessInfo, PolicyKind};
//!
//! let cfg = CacheConfig::new("l1i", 32 * 1024, 8, 2);
//! let mut cache = Cache::new(cfg.clone(), PolicyKind::TreePlru.build(cfg.sets(), 8, 1));
//! let info = AccessInfo::demand(LineKind::Instruction);
//! assert!(cache.lookup(0x40, &info).is_none()); // cold miss
//! cache.fill(0x40, &info);
//! assert!(cache.lookup(0x40, &info).is_some());
//! ```

pub mod addr;
pub mod audit;
pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod line;
pub mod linemap;
pub mod policy;
pub mod rng;
pub mod stats;

pub use crate::audit::AuditViolation;
pub use crate::cache::Cache;
pub use crate::config::{CacheConfig, HierarchyConfig};
pub use crate::hierarchy::{Hierarchy, MemAccess, ServedBy};
pub use crate::line::{LineKind, LineState};
pub use crate::policy::{AccessInfo, PolicyKind, ReplacementPolicy};
pub use crate::rng::XorShift64;
