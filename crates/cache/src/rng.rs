//! Deterministic pseudo-random number generation for simulated hardware.
//!
//! The paper's `R(r)` mode-selection signal and BRRIP's 1/32 insertion both
//! need a cheap pseudo-random source. Real hardware would use an LFSR; we
//! use xorshift64*, seeded per structure, so every simulation is
//! bit-reproducible independent of external crates.

/// A xorshift64* PRNG.
///
/// # Example
///
/// ```
/// use emissary_cache::rng::XorShift64;
///
/// let mut a = XorShift64::new(7);
/// let mut b = XorShift64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed (zero is mapped to a fixed non-zero
    /// constant, since xorshift cannot leave the all-zero state).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform value in `[0, bound)`. Returns 0 when `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Bernoulli draw: true with probability `1/denominator`.
    ///
    /// `denominator == 0` always returns false; `1` always returns true.
    /// This matches the paper's `R(1/32)` notation.
    pub fn one_in(&mut self, denominator: u32) -> bool {
        match denominator {
            0 => false,
            1 => true,
            d => self.next_below(d as u64) == 0,
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Default for XorShift64 {
    fn default() -> Self {
        Self::new(0x5eed_cafe_f00d_1234)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn one_in_edge_cases() {
        let mut r = XorShift64::new(1);
        assert!(!r.one_in(0));
        assert!(r.one_in(1));
    }

    #[test]
    fn one_in_32_is_roughly_uniform() {
        let mut r = XorShift64::new(42);
        let hits = (0..320_000).filter(|_| r.one_in(32)).count();
        // Expect ~10_000; allow generous tolerance.
        assert!((8_000..12_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = XorShift64::new(3);
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = XorShift64::new(9);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
