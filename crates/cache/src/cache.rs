//! A single set-associative cache with pluggable replacement.

use crate::addr::set_index;
use crate::config::CacheConfig;
#[cfg(test)]
use crate::line::LineKind;
use crate::line::LineState;
use crate::policy::{AccessInfo, PolicyImpl};
use crate::stats::CacheStats;

/// Result of inserting a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillOutcome {
    /// The way the new line now occupies; `None` when the policy chose to
    /// bypass the fill entirely.
    pub way: Option<usize>,
    /// The valid line that was displaced, if any.
    pub evicted: Option<LineState>,
}

impl FillOutcome {
    /// Whether the line was actually installed.
    pub fn filled(&self) -> bool {
        self.way.is_some()
    }
}

/// A set-associative cache.
///
/// The cache owns line metadata and statistics; recency/prediction state
/// lives in the injected [`PolicyImpl`]. All addresses passed in are
/// *line* addresses (see [`crate::addr`]).
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    ways: usize,
    lines: Vec<LineState>,
    policy: PolicyImpl,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache from a validated config and a policy sized for it.
    pub fn new(cfg: CacheConfig, policy: impl Into<PolicyImpl>) -> Self {
        let sets = cfg.sets();
        let ways = cfg.ways;
        Self {
            cfg,
            sets,
            ways,
            lines: vec![LineState::invalid(); sets * ways],
            policy: policy.into(),
            stats: CacheStats::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// The replacement policy's report name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Hands the replacement policy an observability tracer (see
    /// [`crate::policy::ReplacementPolicy::set_tracer`]).
    pub fn set_tracer(&mut self, tracer: emissary_obs::Tracer) {
        self.policy.set_tracer(tracer);
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Ways per set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    #[inline]
    fn set_of(&self, line_addr: u64) -> usize {
        set_index(line_addr, self.sets)
    }

    #[inline]
    fn base(&self, set: usize) -> usize {
        set * self.ways
    }

    /// Read-only view of a set's ways.
    pub fn set_slice(&self, set: usize) -> &[LineState] {
        &self.lines[self.base(set)..self.base(set) + self.ways]
    }

    /// Side-effect-free residency probe.
    pub fn probe(&self, line_addr: u64) -> Option<usize> {
        let set = self.set_of(line_addr);
        self.set_slice(set)
            .iter()
            .position(|l| l.valid && l.tag == line_addr)
    }

    /// Whether the line is resident.
    pub fn contains(&self, line_addr: u64) -> bool {
        self.probe(line_addr).is_some()
    }

    /// Looks the line up, updating recency and statistics.
    ///
    /// Returns the hit way, or `None` on miss (the caller decides whether
    /// and how to fill).
    pub fn lookup(&mut self, line_addr: u64, info: &AccessInfo) -> Option<usize> {
        let set = self.set_of(line_addr);
        let way = self.probe(line_addr);
        if info.is_prefetch {
            self.stats.record_prefetch(info.kind, way.is_some());
        } else {
            self.stats.record_demand(info.kind, way.is_some());
        }
        if let Some(way) = way {
            let idx = self.base(set) + way;
            if self.lines[idx].priority {
                self.stats.priority_hits += 1;
            }
            if info.is_write {
                self.lines[idx].dirty = true;
            }
            if !info.is_prefetch {
                self.lines[idx].prefetched = false;
            }
            let base = self.base(set);
            self.policy
                .on_hit(set, way, &self.lines[base..base + self.ways], info);
        }
        way
    }

    /// Inserts `line_addr`, evicting if the set is full.
    ///
    /// Invalid ways are used first; only a completely valid set consults the
    /// policy's victim selection. The policy's `on_fill` is invoked with the
    /// post-insertion set contents.
    pub fn fill(&mut self, line_addr: u64, info: &AccessInfo) -> FillOutcome {
        debug_assert!(
            self.probe(line_addr).is_none(),
            "fill() of resident line {line_addr:#x} in {}",
            self.cfg.name
        );
        let set = self.set_of(line_addr);
        {
            let base = self.base(set);
            if self
                .policy
                .should_bypass(set, &self.lines[base..base + self.ways], info)
            {
                self.stats.bypasses += 1;
                return FillOutcome {
                    way: None,
                    evicted: None,
                };
            }
        }
        let (way, evicted) = match self.set_slice(set).iter().position(|l| !l.valid) {
            Some(way) => (way, None),
            None => {
                let base = self.base(set);
                let way = self
                    .policy
                    .victim(set, &self.lines[base..base + self.ways], info);
                let old = self.lines[base + way];
                debug_assert!(way < self.ways && old.valid);
                self.stats.evictions += 1;
                if old.dirty {
                    self.stats.writebacks += 1;
                }
                (way, Some(old))
            }
        };
        let idx = self.base(set) + way;
        self.lines[idx] = LineState {
            tag: line_addr,
            valid: true,
            dirty: info.is_write,
            kind: info.kind,
            priority: info.high_priority,
            sfl: false,
            prefetched: info.is_prefetch,
        };
        self.stats.fills += 1;
        let base = self.base(set);
        self.policy
            .on_fill(set, way, &self.lines[base..base + self.ways], info);
        FillOutcome {
            way: Some(way),
            evicted,
        }
    }

    /// Applies the deferred insertion update once the miss that filled
    /// `line_addr` has resolved (see [`crate::policy`] module docs).
    ///
    /// No-op if the line has already been displaced.
    pub fn resolve_fill(&mut self, line_addr: u64, info: &AccessInfo) {
        let set = self.set_of(line_addr);
        if let Some(way) = self.probe(line_addr) {
            let base = self.base(set);
            self.policy
                .on_fill_resolved(set, way, &self.lines[base..base + self.ways], info);
        }
    }

    /// Removes the line (back-invalidation / exclusive promotion).
    ///
    /// Returns the removed state so the caller can propagate dirty data or
    /// priority bits.
    pub fn invalidate(&mut self, line_addr: u64) -> Option<LineState> {
        let set = self.set_of(line_addr);
        let way = self.probe(line_addr)?;
        let idx = self.base(set) + way;
        let old = self.lines[idx];
        self.lines[idx] = LineState::invalid();
        self.stats.invalidations += 1;
        self.policy.on_invalidate(set, way);
        Some(old)
    }

    /// Sets or clears the EMISSARY priority bit of a resident line.
    ///
    /// Returns true if the line was found. The policy is notified so
    /// priority-class recency structures can migrate the line.
    pub fn set_priority(&mut self, line_addr: u64, high: bool) -> bool {
        let set = self.set_of(line_addr);
        let Some(way) = self.probe(line_addr) else {
            return false;
        };
        let idx = self.base(set) + way;
        if self.lines[idx].priority != high {
            self.lines[idx].priority = high;
            let base = self.base(set);
            self.policy
                .on_priority_change(set, way, &self.lines[base..base + self.ways]);
        }
        true
    }

    /// Marks a resident line dirty (e.g. a dirty L1D eviction writing back
    /// into the inclusive L2 copy).
    pub fn set_dirty(&mut self, line_addr: u64, dirty: bool) -> bool {
        let set = self.set_of(line_addr);
        let Some(way) = self.probe(line_addr) else {
            return false;
        };
        let idx = self.base(set) + way;
        self.lines[idx].dirty = dirty;
        true
    }

    /// Marks a resident line's SFL ("served from last-level") bit.
    pub fn set_sfl(&mut self, line_addr: u64, sfl: bool) -> bool {
        let set = self.set_of(line_addr);
        let Some(way) = self.probe(line_addr) else {
            return false;
        };
        let idx = self.base(set) + way;
        self.lines[idx].sfl = sfl;
        true
    }

    /// Returns the priority bit of a resident line.
    pub fn priority_of(&self, line_addr: u64) -> Option<bool> {
        let set = self.set_of(line_addr);
        self.probe(line_addr)
            .map(|w| self.lines[self.base(set) + w].priority)
    }

    /// Clears every priority bit (§6's periodic reset mechanism).
    pub fn reset_priorities(&mut self) {
        for set in 0..self.sets {
            for way in 0..self.ways {
                let idx = self.base(set) + way;
                if self.lines[idx].priority {
                    self.lines[idx].priority = false;
                    let base = self.base(set);
                    self.policy
                        .on_priority_change(set, way, &self.lines[base..base + self.ways]);
                }
            }
        }
    }

    /// Per-set count of valid high-priority lines (Figure 8's metric).
    pub fn priority_counts_per_set(&self) -> Vec<u32> {
        (0..self.sets)
            .map(|s| {
                self.set_slice(s)
                    .iter()
                    .filter(|l| l.is_high_priority())
                    .count() as u32
            })
            .collect()
    }

    /// Number of valid lines currently resident.
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Iterates over all valid lines.
    pub fn iter_valid(&self) -> impl Iterator<Item = &LineState> {
        self.lines.iter().filter(|l| l.valid)
    }

    /// Event counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Mutable event counters (used by the hierarchy to account MSHR joins
    /// as demand misses).
    pub fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    /// Resets event counters (e.g. at the warmup/measurement boundary).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Test-only mutable access to a way's raw line state, for corrupting
    /// state in auditor tests.
    #[cfg(test)]
    pub(crate) fn line_mut(&mut self, set: usize, way: usize) -> &mut LineState {
        let idx = self.base(set) + way;
        &mut self.lines[idx]
    }

    /// Read-only structural audit of every set (see [`crate::audit`]).
    ///
    /// `level` tags the violations with this cache's position in the
    /// hierarchy. Returns every violation found, so one corrupted set does
    /// not mask another.
    pub fn audit(&self, level: emissary_obs::Level) -> Vec<crate::audit::AuditViolation> {
        use crate::audit::AuditViolation;
        let mut violations = Vec::new();
        for set in 0..self.sets {
            let lines = self.set_slice(set);
            let valid = lines.iter().filter(|l| l.valid).count();
            if valid > self.ways {
                violations.push(AuditViolation {
                    invariant: "set_occupancy",
                    level,
                    set,
                    detail: valid as u64,
                    message: format!(
                        "{} valid lines in a {}-way set of {}",
                        valid, self.ways, self.cfg.name
                    ),
                });
            }
            for (way, line) in lines.iter().enumerate() {
                if !line.valid {
                    continue;
                }
                let home = self.set_of(line.tag);
                if home != set {
                    violations.push(AuditViolation {
                        invariant: "line_placement",
                        level,
                        set,
                        detail: line.tag,
                        message: format!(
                            "line {:#x} in way {} of set {} maps to set {} of {}",
                            line.tag, way, set, home, self.cfg.name
                        ),
                    });
                }
                if lines[..way].iter().any(|l| l.valid && l.tag == line.tag) {
                    violations.push(AuditViolation {
                        invariant: "duplicate_line",
                        level,
                        set,
                        detail: line.tag,
                        message: format!(
                            "line {:#x} resident in two ways of set {} of {}",
                            line.tag, set, self.cfg.name
                        ),
                    });
                }
                if line.priority && !line.kind.is_instruction() {
                    violations.push(AuditViolation {
                        invariant: "priority_on_data",
                        level,
                        set,
                        detail: line.tag,
                        message: format!(
                            "data line {:#x} carries the P bit in set {} of {} \
                             (every marking path is instruction-side)",
                            line.tag, set, self.cfg.name
                        ),
                    });
                }
            }
            if let Some(message) = self.policy.audit_set(set, lines) {
                violations.push(AuditViolation {
                    invariant: "policy_state",
                    level,
                    set,
                    detail: 0,
                    message: format!("{}: {}", self.policy_name(), message),
                });
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;

    fn small_cache(kind: PolicyKind) -> Cache {
        // 4 sets x 2 ways.
        let cfg = CacheConfig::new("t", 4 * 2 * 64, 2, 1);
        let policy = kind.build(cfg.sets(), cfg.ways, 1);
        Cache::new(cfg, policy)
    }

    fn instr() -> AccessInfo {
        AccessInfo::demand(LineKind::Instruction)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small_cache(PolicyKind::TrueLru);
        assert!(c.lookup(5, &instr()).is_none());
        c.fill(5, &instr());
        assert!(c.lookup(5, &instr()).is_some());
        assert_eq!(c.stats().instr_misses, 1);
        assert_eq!(c.stats().instr_hits, 1);
        assert_eq!(c.stats().fills, 1);
    }

    #[test]
    fn fills_use_invalid_ways_before_evicting() {
        let mut c = small_cache(PolicyKind::TrueLru);
        // Lines 0 and 4 map to set 0 (4 sets).
        let a = c.fill(0, &instr());
        assert!(a.evicted.is_none());
        let b = c.fill(4, &instr());
        assert!(b.evicted.is_none());
        assert_ne!(a.way, b.way);
        assert!(a.filled() && b.filled());
        // Third line in set 0 must evict.
        let d = c.fill(8, &instr());
        assert!(d.evicted.is_some());
        assert_eq!(d.evicted.unwrap().tag, 0); // LRU
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = small_cache(PolicyKind::TrueLru);
        let mut wr = AccessInfo::demand(LineKind::Data);
        wr.is_write = true;
        c.fill(0, &wr);
        c.fill(4, &instr());
        let out = c.fill(8, &instr());
        assert!(out.evicted.unwrap().dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small_cache(PolicyKind::TrueLru);
        c.fill(0, &AccessInfo::demand(LineKind::Data));
        let mut wr = AccessInfo::demand(LineKind::Data);
        wr.is_write = true;
        c.lookup(0, &wr);
        let set = 0;
        let l = c.set_slice(set).iter().find(|l| l.tag == 0).unwrap();
        assert!(l.dirty);
    }

    #[test]
    fn invalidate_removes_and_reports() {
        let mut c = small_cache(PolicyKind::TrueLru);
        c.fill(0, &instr());
        let old = c.invalidate(0).unwrap();
        assert_eq!(old.tag, 0);
        assert!(!c.contains(0));
        assert!(c.invalidate(0).is_none());
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn priority_bit_roundtrip_and_histogram() {
        let mut c = small_cache(PolicyKind::TreePlru);
        c.fill(0, &instr());
        c.fill(1, &instr());
        assert!(c.set_priority(0, true));
        assert!(!c.set_priority(99, true));
        assert_eq!(c.priority_of(0), Some(true));
        assert_eq!(c.priority_of(1), Some(false));
        let counts = c.priority_counts_per_set();
        assert_eq!(counts.iter().sum::<u32>(), 1);
        c.reset_priorities();
        assert_eq!(c.priority_of(0), Some(false));
    }

    #[test]
    fn demand_hit_clears_prefetched_flag() {
        let mut c = small_cache(PolicyKind::TrueLru);
        c.fill(0, &AccessInfo::prefetch(LineKind::Instruction));
        assert!(c.iter_valid().next().unwrap().prefetched);
        c.lookup(0, &instr());
        assert!(!c.iter_valid().next().unwrap().prefetched);
    }

    #[test]
    fn prefetch_stats_separate_from_demand() {
        let mut c = small_cache(PolicyKind::TrueLru);
        c.lookup(0, &AccessInfo::prefetch(LineKind::Instruction));
        c.fill(0, &AccessInfo::prefetch(LineKind::Instruction));
        c.lookup(0, &AccessInfo::prefetch(LineKind::Instruction));
        assert_eq!(c.stats().prefetch_misses(), 1);
        assert_eq!(c.stats().prefetch_hits(), 1);
        assert_eq!(c.stats().demand_accesses(), 0);
    }

    #[test]
    fn valid_line_count_tracks_occupancy() {
        let mut c = small_cache(PolicyKind::TrueLru);
        assert_eq!(c.valid_lines(), 0);
        c.fill(0, &instr());
        c.fill(1, &instr());
        assert_eq!(c.valid_lines(), 2);
        c.invalidate(1);
        assert_eq!(c.valid_lines(), 1);
    }

    #[test]
    fn audit_is_clean_after_normal_traffic() {
        let mut c = small_cache(PolicyKind::Srrip);
        for l in 0..32u64 {
            c.lookup(l, &instr());
            c.fill(l, &instr());
        }
        assert!(c.audit(emissary_obs::Level::L2).is_empty());
    }

    #[test]
    fn audit_catches_misplaced_and_duplicate_lines() {
        let mut c = small_cache(PolicyKind::TrueLru);
        c.fill(0, &instr());
        c.fill(4, &instr());
        // Corrupt: retag way 1 of set 0 so it duplicates way 0 (line 0
        // belongs to set 0, so this is a duplicate, not a misplacement).
        c.line_mut(0, 1).tag = 0;
        let v = c.audit(emissary_obs::Level::L2);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "duplicate_line");
        assert_eq!(v[0].detail, 0);
        // Corrupt differently: a tag that maps to another set.
        c.line_mut(0, 1).tag = 1;
        let v = c.audit(emissary_obs::Level::L2);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "line_placement");
        assert!(v[0].message.contains("maps to set 1"));
    }

    #[test]
    fn audit_catches_priority_bit_on_data_line() {
        let mut c = small_cache(PolicyKind::TreePlru);
        c.fill(8, &AccessInfo::demand(LineKind::Data));
        c.set_priority(8, true);
        let v = c.audit(emissary_obs::Level::L2);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "priority_on_data");
        assert_eq!(v[0].detail, 8);
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let mut c = small_cache(PolicyKind::TrueLru);
        c.lookup(0, &instr());
        c.fill(0, &instr());
        c.reset_stats();
        assert_eq!(*c.stats(), CacheStats::default());
    }
}
