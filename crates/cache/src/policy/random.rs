//! Uniform-random replacement — a sanity baseline for tests and benches.

use crate::line::LineState;
use crate::policy::{AccessInfo, ReplacementPolicy};
use crate::rng::XorShift64;

/// Evicts a uniformly random valid way. Keeps no recency state.
#[derive(Debug)]
pub struct RandomPolicy {
    rng: XorShift64,
}

impl RandomPolicy {
    /// Creates the policy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: XorShift64::new(seed ^ 0xDA7A),
        }
    }
}

impl ReplacementPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn on_hit(&mut self, _set: usize, _way: usize, _lines: &[LineState], _info: &AccessInfo) {}

    fn on_fill(&mut self, _set: usize, _way: usize, _lines: &[LineState], _info: &AccessInfo) {}

    fn victim(&mut self, _set: usize, lines: &[LineState], _info: &AccessInfo) -> usize {
        let valid: Vec<usize> = lines
            .iter()
            .enumerate()
            .filter(|(_, l)| l.valid)
            .map(|(w, _)| w)
            .collect();
        assert!(
            !valid.is_empty(),
            "victim() requires at least one valid line"
        );
        valid[self.rng.next_below(valid.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::LineKind;

    #[test]
    fn victims_are_always_valid() {
        let mut p = RandomPolicy::new(3);
        let mut lines = vec![LineState::invalid(); 8];
        for (i, l) in lines.iter_mut().enumerate().skip(4) {
            l.valid = true;
            l.tag = i as u64;
            l.kind = LineKind::Data;
        }
        for _ in 0..100 {
            let v = p.victim(0, &lines, &AccessInfo::demand(LineKind::Data));
            assert!(lines[v].valid);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = RandomPolicy::new(11);
        let mut b = RandomPolicy::new(11);
        let lines: Vec<LineState> = (0..8)
            .map(|i| LineState {
                tag: i,
                valid: true,
                kind: LineKind::Data,
                ..LineState::invalid()
            })
            .collect();
        for _ in 0..50 {
            assert_eq!(
                a.victim(0, &lines, &AccessInfo::demand(LineKind::Data)),
                b.victim(0, &lines, &AccessInfo::demand(LineKind::Data))
            );
        }
    }
}
