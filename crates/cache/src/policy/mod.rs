//! Replacement-policy abstraction and the prior-work policies from Table 3.
//!
//! A [`ReplacementPolicy`] owns only *recency/prediction metadata*; line
//! contents and flag bits (validity, the EMISSARY `P` bit, …) live in the
//! [`crate::cache::Cache`] and are presented to the policy as a read-only
//! slice of [`LineState`] for the relevant set.
//!
//! ## Deferred insertion updates
//!
//! The paper's `M:` treatments place a line's insertion position using the
//! decode-starvation / issue-queue-empty flags of the miss, which are known
//! *before the line is inserted* in real hardware but only at miss
//! resolution in this eager-fill simulator. The cache therefore calls
//! [`ReplacementPolicy::on_fill`] at structural fill time (flags unknown,
//! `high_priority == false`) and [`ReplacementPolicy::on_fill_resolved`]
//! when the miss's flags become known. Insertion-treatment policies place
//! the line pessimistically (LRU) at fill and promote it at resolution;
//! plain policies do all their work in `on_fill`.

mod clip;
mod costaware;
mod insertion;
mod lru;
mod pdp;
mod plru;
mod random;
mod rrip;

pub use clip::DclipPolicy;
pub use costaware::{LacsPolicy, LinPolicy};
pub use insertion::{InsertionPolicy, RecencyBase};
pub use lru::TrueLruPolicy;
pub use pdp::PdpPolicy;
pub use plru::{PlruTree, TreePlruPolicy};
pub use random::RandomPolicy;
pub use rrip::{RripMode, RripPolicy};

use crate::line::{LineKind, LineState};

/// Metadata accompanying a cache access, consumed by policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessInfo {
    /// Instruction or data access.
    pub kind: LineKind,
    /// True for prefetcher-generated accesses.
    pub is_prefetch: bool,
    /// True for stores.
    pub is_write: bool,
    /// Mode-selection outcome for the incoming line (Table 1 equations,
    /// evaluated by the caller). Only meaningful in `on_fill_resolved` for
    /// `M:` treatments and in the EMISSARY `P(N)` policy's priority plumbing.
    pub high_priority: bool,
    /// Hint to insert at the most-protected position regardless of other
    /// rules; used by the L3's SFL mechanism (§5.1).
    pub mru_hint: bool,
    /// Outstanding misses when this fill was initiated (MLP estimate for
    /// LIN-style cost-aware policies). 0 when unknown.
    pub outstanding_misses: u8,
    /// Latency of the fill's source in cycles (LACS-style cost input).
    /// 0 when unknown or on hits.
    pub fill_latency: u16,
}

impl AccessInfo {
    /// A demand access of the given kind with no special flags.
    pub fn demand(kind: LineKind) -> Self {
        Self {
            kind,
            is_prefetch: false,
            is_write: false,
            high_priority: false,
            mru_hint: false,
            outstanding_misses: 0,
            fill_latency: 0,
        }
    }

    /// A prefetch access of the given kind.
    pub fn prefetch(kind: LineKind) -> Self {
        Self {
            is_prefetch: true,
            ..Self::demand(kind)
        }
    }

    /// Returns a copy with `high_priority` set as given.
    pub fn with_priority(self, high_priority: bool) -> Self {
        Self {
            high_priority,
            ..self
        }
    }

    /// Returns a copy with `mru_hint` set as given.
    pub fn with_mru_hint(self, mru_hint: bool) -> Self {
        Self { mru_hint, ..self }
    }
}

/// A cache replacement policy.
///
/// Implementations must be deterministic given their seed; all randomness
/// goes through [`crate::rng::XorShift64`].
pub trait ReplacementPolicy: std::fmt::Debug + Send {
    /// Short name for reports ("lru", "drrip", "P(8):S&E&R(1/32)", …).
    fn name(&self) -> String;

    /// Called on every hit to `way` in `set`.
    fn on_hit(&mut self, set: usize, way: usize, lines: &[LineState], info: &AccessInfo);

    /// Called when a new line is structurally placed into `way` of `set`.
    /// The `lines` slice already reflects the inserted line.
    fn on_fill(&mut self, set: usize, way: usize, lines: &[LineState], info: &AccessInfo);

    /// Called when the miss that filled `way` resolves and its
    /// starvation-derived flags are known (see module docs). Default: no-op.
    fn on_fill_resolved(
        &mut self,
        _set: usize,
        _way: usize,
        _lines: &[LineState],
        _info: &AccessInfo,
    ) {
    }

    /// Chooses the way to evict from a completely valid set.
    ///
    /// The cache guarantees every way in `lines` is valid; policies may
    /// panic otherwise.
    fn victim(&mut self, set: usize, lines: &[LineState], info: &AccessInfo) -> usize;

    /// Whether the incoming line should bypass the cache instead of
    /// filling (consulted by [`crate::cache::Cache::fill`] before victim
    /// selection). Default: never. The paper found bypass ineffective for
    /// EMISSARY (§2) — the variant exists to reproduce that negative
    /// result.
    fn should_bypass(&mut self, _set: usize, _lines: &[LineState], _info: &AccessInfo) -> bool {
        false
    }

    /// Called when a way is invalidated (back-invalidation, exclusive-L3
    /// promotion). Default: no-op.
    fn on_invalidate(&mut self, _set: usize, _way: usize) {}

    /// Called when a resident line's EMISSARY priority bit changes (e.g. the
    /// L1I communicates `P = 1` to the L2 copy on eviction). Default: no-op.
    fn on_priority_change(&mut self, _set: usize, _way: usize, _lines: &[LineState]) {}

    /// Hands the policy an observability tracer so it can emit per-decision
    /// events (the EMISSARY policy reports Algorithm 1 outcomes through
    /// this). Default: the tracer is dropped — policies without
    /// decision-level telemetry ignore it.
    fn set_tracer(&mut self, _tracer: emissary_obs::Tracer) {}

    /// Read-only self-check of the policy's metadata for `set` against the
    /// cache's line states, run by the opt-in invariant auditor
    /// (`EMISSARY_AUDIT=1`) at epoch boundaries. Returns a description of
    /// the first inconsistency found, or `None` when the state is sound.
    /// Default: no policy-specific state to check.
    fn audit_set(&self, _set: usize, _lines: &[LineState]) -> Option<String> {
        None
    }
}

/// Factory covering the prior-work policies implemented in this crate.
///
/// The EMISSARY `P(N)` family implements [`ReplacementPolicy`] in the
/// `emissary-core` crate; its factory composes with this one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Classic true LRU (`M:1` baseline in Figure 1).
    TrueLru,
    /// Tree pseudo-LRU (the TPLRU baseline of §5).
    TreePlru,
    /// `M:` insertion treatment over true LRU: instruction lines insert LRU
    /// and are promoted to MRU when the resolved selection says
    /// high-priority; data lines insert MRU (covers LIP/BIP/M:S&E/…).
    InsertionTrueLru,
    /// `M:` insertion treatment over tree PLRU.
    InsertionTreePlru,
    /// Static re-reference interval prediction.
    Srrip,
    /// Bimodal RRIP with 1/32 long insertion.
    Brrip,
    /// Dynamic RRIP via set dueling.
    Drrip,
    /// Static protecting-distance policy (PDP).
    Pdp,
    /// Dynamic code line preservation (DCLIP/CLIP).
    Dclip,
    /// Uniform-random victim (testing baseline).
    Random,
    /// MLP-aware LIN approximation (§7.1 related work).
    Lin,
    /// LACS approximation (§7.1 related work).
    Lacs,
}

impl PolicyKind {
    /// Builds the policy for a cache of `sets` x `ways`, seeding any
    /// randomness from `seed`.
    pub fn build(self, sets: usize, ways: usize, seed: u64) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyKind::TrueLru => Box::new(TrueLruPolicy::new(sets, ways)),
            PolicyKind::TreePlru => Box::new(TreePlruPolicy::new(sets, ways)),
            PolicyKind::InsertionTrueLru => {
                Box::new(InsertionPolicy::new(RecencyBase::TrueLru, sets, ways))
            }
            PolicyKind::InsertionTreePlru => {
                Box::new(InsertionPolicy::new(RecencyBase::TreePlru, sets, ways))
            }
            PolicyKind::Srrip => Box::new(RripPolicy::new(RripMode::Static, sets, ways, seed)),
            PolicyKind::Brrip => Box::new(RripPolicy::new(RripMode::Bimodal, sets, ways, seed)),
            PolicyKind::Drrip => Box::new(RripPolicy::new(RripMode::Dynamic, sets, ways, seed)),
            PolicyKind::Pdp => Box::new(PdpPolicy::new(sets, ways, PdpPolicy::DEFAULT_DISTANCE)),
            PolicyKind::Dclip => Box::new(DclipPolicy::new(sets, ways, seed)),
            PolicyKind::Random => Box::new(RandomPolicy::new(seed)),
            PolicyKind::Lin => Box::new(LinPolicy::new(sets, ways)),
            PolicyKind::Lacs => Box::new(LacsPolicy::new(sets, ways)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_info_builders() {
        let d = AccessInfo::demand(LineKind::Data);
        assert!(!d.is_prefetch && !d.high_priority);
        let p = AccessInfo::prefetch(LineKind::Instruction);
        assert!(p.is_prefetch);
        assert!(p.with_priority(true).high_priority);
        assert!(p.with_mru_hint(true).mru_hint);
    }

    #[test]
    fn factory_builds_every_kind() {
        for kind in [
            PolicyKind::TrueLru,
            PolicyKind::TreePlru,
            PolicyKind::InsertionTrueLru,
            PolicyKind::InsertionTreePlru,
            PolicyKind::Srrip,
            PolicyKind::Brrip,
            PolicyKind::Drrip,
            PolicyKind::Pdp,
            PolicyKind::Dclip,
            PolicyKind::Random,
            PolicyKind::Lin,
            PolicyKind::Lacs,
        ] {
            let p = kind.build(64, 8, 1);
            assert!(!p.name().is_empty());
        }
    }
}
