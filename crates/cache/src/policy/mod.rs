//! Replacement-policy abstraction and the prior-work policies from Table 3.
//!
//! A [`ReplacementPolicy`] owns only *recency/prediction metadata*; line
//! contents and flag bits (validity, the EMISSARY `P` bit, …) live in the
//! [`crate::cache::Cache`] and are presented to the policy as a read-only
//! slice of [`LineState`] for the relevant set.
//!
//! ## Deferred insertion updates
//!
//! The paper's `M:` treatments place a line's insertion position using the
//! decode-starvation / issue-queue-empty flags of the miss, which are known
//! *before the line is inserted* in real hardware but only at miss
//! resolution in this eager-fill simulator. The cache therefore calls
//! [`ReplacementPolicy::on_fill`] at structural fill time (flags unknown,
//! `high_priority == false`) and [`ReplacementPolicy::on_fill_resolved`]
//! when the miss's flags become known. Insertion-treatment policies place
//! the line pessimistically (LRU) at fill and promote it at resolution;
//! plain policies do all their work in `on_fill`.

mod clip;
mod costaware;
mod insertion;
mod lru;
mod pdp;
mod plru;
mod random;
mod rrip;

pub use clip::DclipPolicy;
pub use costaware::{LacsPolicy, LinPolicy};
pub use insertion::{InsertionPolicy, RecencyBase};
pub use lru::TrueLruPolicy;
pub use pdp::PdpPolicy;
pub use plru::{PlruTree, TreePlruPolicy};
pub use random::RandomPolicy;
pub use rrip::{RripMode, RripPolicy};

use crate::line::{LineKind, LineState};

/// Metadata accompanying a cache access, consumed by policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessInfo {
    /// Instruction or data access.
    pub kind: LineKind,
    /// True for prefetcher-generated accesses.
    pub is_prefetch: bool,
    /// True for stores.
    pub is_write: bool,
    /// Mode-selection outcome for the incoming line (Table 1 equations,
    /// evaluated by the caller). Only meaningful in `on_fill_resolved` for
    /// `M:` treatments and in the EMISSARY `P(N)` policy's priority plumbing.
    pub high_priority: bool,
    /// Hint to insert at the most-protected position regardless of other
    /// rules; used by the L3's SFL mechanism (§5.1).
    pub mru_hint: bool,
    /// Outstanding misses when this fill was initiated (MLP estimate for
    /// LIN-style cost-aware policies). 0 when unknown.
    pub outstanding_misses: u8,
    /// Latency of the fill's source in cycles (LACS-style cost input).
    /// 0 when unknown or on hits.
    pub fill_latency: u16,
}

impl AccessInfo {
    /// A demand access of the given kind with no special flags.
    pub fn demand(kind: LineKind) -> Self {
        Self {
            kind,
            is_prefetch: false,
            is_write: false,
            high_priority: false,
            mru_hint: false,
            outstanding_misses: 0,
            fill_latency: 0,
        }
    }

    /// A prefetch access of the given kind.
    pub fn prefetch(kind: LineKind) -> Self {
        Self {
            is_prefetch: true,
            ..Self::demand(kind)
        }
    }

    /// Returns a copy with `high_priority` set as given.
    pub fn with_priority(self, high_priority: bool) -> Self {
        Self {
            high_priority,
            ..self
        }
    }

    /// Returns a copy with `mru_hint` set as given.
    pub fn with_mru_hint(self, mru_hint: bool) -> Self {
        Self { mru_hint, ..self }
    }
}

/// A cache replacement policy.
///
/// Implementations must be deterministic given their seed; all randomness
/// goes through [`crate::rng::XorShift64`].
pub trait ReplacementPolicy: std::fmt::Debug + Send {
    /// Short name for reports ("lru", "drrip", "P(8):S&E&R(1/32)", …).
    /// Returned as `&'static str` because stats/trace paths call it per
    /// event; policies with computed notation intern it once at
    /// construction (see [`intern_name`]).
    fn name(&self) -> &'static str;

    /// Called on every hit to `way` in `set`.
    fn on_hit(&mut self, set: usize, way: usize, lines: &[LineState], info: &AccessInfo);

    /// Called when a new line is structurally placed into `way` of `set`.
    /// The `lines` slice already reflects the inserted line.
    fn on_fill(&mut self, set: usize, way: usize, lines: &[LineState], info: &AccessInfo);

    /// Called when the miss that filled `way` resolves and its
    /// starvation-derived flags are known (see module docs). Default: no-op.
    fn on_fill_resolved(
        &mut self,
        _set: usize,
        _way: usize,
        _lines: &[LineState],
        _info: &AccessInfo,
    ) {
    }

    /// Chooses the way to evict from a completely valid set.
    ///
    /// The cache guarantees every way in `lines` is valid; policies may
    /// panic otherwise.
    fn victim(&mut self, set: usize, lines: &[LineState], info: &AccessInfo) -> usize;

    /// Whether the incoming line should bypass the cache instead of
    /// filling (consulted by [`crate::cache::Cache::fill`] before victim
    /// selection). Default: never. The paper found bypass ineffective for
    /// EMISSARY (§2) — the variant exists to reproduce that negative
    /// result.
    fn should_bypass(&mut self, _set: usize, _lines: &[LineState], _info: &AccessInfo) -> bool {
        false
    }

    /// Called when a way is invalidated (back-invalidation, exclusive-L3
    /// promotion). Default: no-op.
    fn on_invalidate(&mut self, _set: usize, _way: usize) {}

    /// Called when a resident line's EMISSARY priority bit changes (e.g. the
    /// L1I communicates `P = 1` to the L2 copy on eviction). Default: no-op.
    fn on_priority_change(&mut self, _set: usize, _way: usize, _lines: &[LineState]) {}

    /// Hands the policy an observability tracer so it can emit per-decision
    /// events (the EMISSARY policy reports Algorithm 1 outcomes through
    /// this). Default: the tracer is dropped — policies without
    /// decision-level telemetry ignore it.
    fn set_tracer(&mut self, _tracer: emissary_obs::Tracer) {}

    /// Read-only self-check of the policy's metadata for `set` against the
    /// cache's line states, run by the opt-in invariant auditor
    /// (`EMISSARY_AUDIT=1`) at epoch boundaries. Returns a description of
    /// the first inconsistency found, or `None` when the state is sound.
    /// Default: no policy-specific state to check.
    fn audit_set(&self, _set: usize, _lines: &[LineState]) -> Option<String> {
        None
    }
}

/// Factory covering the prior-work policies implemented in this crate.
///
/// The EMISSARY `P(N)` family implements [`ReplacementPolicy`] in the
/// `emissary-core` crate; its factory composes with this one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Classic true LRU (`M:1` baseline in Figure 1).
    TrueLru,
    /// Tree pseudo-LRU (the TPLRU baseline of §5).
    TreePlru,
    /// `M:` insertion treatment over true LRU: instruction lines insert LRU
    /// and are promoted to MRU when the resolved selection says
    /// high-priority; data lines insert MRU (covers LIP/BIP/M:S&E/…).
    InsertionTrueLru,
    /// `M:` insertion treatment over tree PLRU.
    InsertionTreePlru,
    /// Static re-reference interval prediction.
    Srrip,
    /// Bimodal RRIP with 1/32 long insertion.
    Brrip,
    /// Dynamic RRIP via set dueling.
    Drrip,
    /// Static protecting-distance policy (PDP).
    Pdp,
    /// Dynamic code line preservation (DCLIP/CLIP).
    Dclip,
    /// Uniform-random victim (testing baseline).
    Random,
    /// MLP-aware LIN approximation (§7.1 related work).
    Lin,
    /// LACS approximation (§7.1 related work).
    Lacs,
}

impl PolicyKind {
    /// Builds the policy for a cache of `sets` x `ways`, seeding any
    /// randomness from `seed`. Returns the enum-dispatched [`PolicyImpl`]
    /// so per-access policy calls need no vtable.
    pub fn build(self, sets: usize, ways: usize, seed: u64) -> PolicyImpl {
        match self {
            PolicyKind::TrueLru => PolicyImpl::TrueLru(TrueLruPolicy::new(sets, ways)),
            PolicyKind::TreePlru => PolicyImpl::TreePlru(TreePlruPolicy::new(sets, ways)),
            PolicyKind::InsertionTrueLru => {
                PolicyImpl::Insertion(InsertionPolicy::new(RecencyBase::TrueLru, sets, ways))
            }
            PolicyKind::InsertionTreePlru => {
                PolicyImpl::Insertion(InsertionPolicy::new(RecencyBase::TreePlru, sets, ways))
            }
            PolicyKind::Srrip => {
                PolicyImpl::Rrip(RripPolicy::new(RripMode::Static, sets, ways, seed))
            }
            PolicyKind::Brrip => {
                PolicyImpl::Rrip(RripPolicy::new(RripMode::Bimodal, sets, ways, seed))
            }
            PolicyKind::Drrip => {
                PolicyImpl::Rrip(RripPolicy::new(RripMode::Dynamic, sets, ways, seed))
            }
            PolicyKind::Pdp => {
                PolicyImpl::Pdp(PdpPolicy::new(sets, ways, PdpPolicy::DEFAULT_DISTANCE))
            }
            PolicyKind::Dclip => PolicyImpl::Dclip(DclipPolicy::new(sets, ways, seed)),
            PolicyKind::Random => PolicyImpl::Random(RandomPolicy::new(seed)),
            PolicyKind::Lin => PolicyImpl::Lin(LinPolicy::new(sets, ways)),
            PolicyKind::Lacs => PolicyImpl::Lacs(LacsPolicy::new(sets, ways)),
        }
    }
}

/// Interns a policy-notation string, returning a `&'static str` for
/// [`ReplacementPolicy::name`]. Deduplicated so repeated constructions of
/// the same notation (sweeps build thousands of policies) never grow the
/// leaked pool beyond the set of distinct notations.
pub fn intern_name(s: &str) -> &'static str {
    use std::sync::Mutex;
    static POOL: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut pool = POOL.lock().expect("intern pool poisoned");
    if let Some(hit) = pool.iter().find(|p| **p == s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    pool.push(leaked);
    leaked
}

/// A replacement policy with enum dispatch on the per-access hot path.
///
/// Every policy in this crate gets its own variant, so [`crate::cache::Cache`]
/// calls resolve to direct (inlinable) method calls instead of a vtable
/// lookup per access. Policies defined elsewhere (the EMISSARY family in
/// `emissary-core`, test doubles) ride in the [`PolicyImpl::Dyn`] fallback,
/// which keeps the [`ReplacementPolicy`] trait as the extension point.
#[derive(Debug)]
pub enum PolicyImpl {
    /// Classic true LRU.
    TrueLru(TrueLruPolicy),
    /// Tree pseudo-LRU.
    TreePlru(TreePlruPolicy),
    /// `M:` insertion treatment over either recency base.
    Insertion(InsertionPolicy),
    /// SRRIP/BRRIP/DRRIP.
    Rrip(RripPolicy),
    /// Protecting-distance policy.
    Pdp(PdpPolicy),
    /// DCLIP/CLIP.
    Dclip(DclipPolicy),
    /// Uniform-random victim.
    Random(RandomPolicy),
    /// MLP-aware LIN approximation.
    Lin(LinPolicy),
    /// LACS approximation.
    Lacs(LacsPolicy),
    /// Dynamically-dispatched fallback for policies defined outside this
    /// crate (EMISSARY, GHRP, test doubles).
    Dyn(Box<dyn ReplacementPolicy>),
}

impl From<Box<dyn ReplacementPolicy>> for PolicyImpl {
    fn from(policy: Box<dyn ReplacementPolicy>) -> Self {
        PolicyImpl::Dyn(policy)
    }
}

/// Expands to a match over every variant, binding the inner policy as `$p`.
macro_rules! dispatch {
    ($self:expr, $p:ident => $call:expr) => {
        match $self {
            PolicyImpl::TrueLru($p) => $call,
            PolicyImpl::TreePlru($p) => $call,
            PolicyImpl::Insertion($p) => $call,
            PolicyImpl::Rrip($p) => $call,
            PolicyImpl::Pdp($p) => $call,
            PolicyImpl::Dclip($p) => $call,
            PolicyImpl::Random($p) => $call,
            PolicyImpl::Lin($p) => $call,
            PolicyImpl::Lacs($p) => $call,
            PolicyImpl::Dyn($p) => $call,
        }
    };
}

impl PolicyImpl {
    /// See [`ReplacementPolicy::name`].
    #[inline]
    pub fn name(&self) -> &'static str {
        dispatch!(self, p => p.name())
    }

    /// See [`ReplacementPolicy::on_hit`].
    #[inline]
    pub fn on_hit(&mut self, set: usize, way: usize, lines: &[LineState], info: &AccessInfo) {
        dispatch!(self, p => p.on_hit(set, way, lines, info))
    }

    /// See [`ReplacementPolicy::on_fill`].
    #[inline]
    pub fn on_fill(&mut self, set: usize, way: usize, lines: &[LineState], info: &AccessInfo) {
        dispatch!(self, p => p.on_fill(set, way, lines, info))
    }

    /// See [`ReplacementPolicy::on_fill_resolved`].
    #[inline]
    pub fn on_fill_resolved(
        &mut self,
        set: usize,
        way: usize,
        lines: &[LineState],
        info: &AccessInfo,
    ) {
        dispatch!(self, p => p.on_fill_resolved(set, way, lines, info))
    }

    /// See [`ReplacementPolicy::victim`].
    #[inline]
    pub fn victim(&mut self, set: usize, lines: &[LineState], info: &AccessInfo) -> usize {
        dispatch!(self, p => p.victim(set, lines, info))
    }

    /// See [`ReplacementPolicy::should_bypass`].
    #[inline]
    pub fn should_bypass(&mut self, set: usize, lines: &[LineState], info: &AccessInfo) -> bool {
        dispatch!(self, p => p.should_bypass(set, lines, info))
    }

    /// See [`ReplacementPolicy::on_invalidate`].
    #[inline]
    pub fn on_invalidate(&mut self, set: usize, way: usize) {
        dispatch!(self, p => p.on_invalidate(set, way))
    }

    /// See [`ReplacementPolicy::on_priority_change`].
    #[inline]
    pub fn on_priority_change(&mut self, set: usize, way: usize, lines: &[LineState]) {
        dispatch!(self, p => p.on_priority_change(set, way, lines))
    }

    /// See [`ReplacementPolicy::set_tracer`].
    pub fn set_tracer(&mut self, tracer: emissary_obs::Tracer) {
        dispatch!(self, p => p.set_tracer(tracer))
    }

    /// See [`ReplacementPolicy::audit_set`].
    pub fn audit_set(&self, set: usize, lines: &[LineState]) -> Option<String> {
        dispatch!(self, p => p.audit_set(set, lines))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_info_builders() {
        let d = AccessInfo::demand(LineKind::Data);
        assert!(!d.is_prefetch && !d.high_priority);
        let p = AccessInfo::prefetch(LineKind::Instruction);
        assert!(p.is_prefetch);
        assert!(p.with_priority(true).high_priority);
        assert!(p.with_mru_hint(true).mru_hint);
    }

    #[test]
    fn factory_builds_every_kind() {
        for kind in [
            PolicyKind::TrueLru,
            PolicyKind::TreePlru,
            PolicyKind::InsertionTrueLru,
            PolicyKind::InsertionTreePlru,
            PolicyKind::Srrip,
            PolicyKind::Brrip,
            PolicyKind::Drrip,
            PolicyKind::Pdp,
            PolicyKind::Dclip,
            PolicyKind::Random,
            PolicyKind::Lin,
            PolicyKind::Lacs,
        ] {
            let p = kind.build(64, 8, 1);
            assert!(!p.name().is_empty());
        }
    }
}
