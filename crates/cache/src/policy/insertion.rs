//! The `M:` insertion treatments (Table 2) over a recency base.
//!
//! `M` bimodality "comes from inserting high-priority lines into the cache's
//! MRU position while placing low-priority lines into the cache's LRU
//! position" (Qureshi et al.'s LIP/BIP generalized with the paper's
//! selection notation). Combined with a selection equation evaluated by the
//! caller this yields:
//!
//! * `M:0` — LIP: never high-priority, always LRU insert;
//! * `M:R(1/32)` — BIP;
//! * `M:S&E`, `M:S&E&R(1/32)` — the paper's starvation-gated variants.
//!
//! Because starvation flags resolve after the structural fill (see
//! [`crate::policy`] module docs), instruction lines are placed at LRU in
//! `on_fill` and promoted to MRU in `on_fill_resolved` when selected. Data
//! lines are not subject to the treatment ("all policies apply only to L2
//! instruction lines") and insert at MRU directly.

use crate::line::LineState;
use crate::policy::plru::valid_mask;
use crate::policy::{AccessInfo, ReplacementPolicy, TreePlruPolicy, TrueLruPolicy};

/// Which recency structure backs the insertion treatment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecencyBase {
    /// Exact LRU stack (used in Figure 1's "true LRU" environment).
    TrueLru,
    /// Tree pseudo-LRU (used in the main evaluation, §4.2).
    TreePlru,
}

#[derive(Debug)]
enum Base {
    TrueLru(TrueLruPolicy),
    TreePlru(TreePlruPolicy),
}

/// `M:` treatment policy; see module docs.
#[derive(Debug)]
pub struct InsertionPolicy {
    base: Base,
}

impl InsertionPolicy {
    /// Creates the treatment over the given base for `sets` x `ways`.
    pub fn new(base: RecencyBase, sets: usize, ways: usize) -> Self {
        let base = match base {
            RecencyBase::TrueLru => Base::TrueLru(TrueLruPolicy::new(sets, ways)),
            RecencyBase::TreePlru => Base::TreePlru(TreePlruPolicy::new(sets, ways)),
        };
        Self { base }
    }

    fn touch_mru(&mut self, set: usize, way: usize) {
        match &mut self.base {
            Base::TrueLru(b) => b.touch_mru(set, way),
            Base::TreePlru(b) => b.tree_mut(set).touch(way),
        }
    }

    fn set_lru(&mut self, set: usize, way: usize) {
        match &mut self.base {
            Base::TrueLru(b) => b.set_lru(set, way),
            Base::TreePlru(b) => b.tree_mut(set).point_to(way),
        }
    }
}

impl ReplacementPolicy for InsertionPolicy {
    fn name(&self) -> &'static str {
        match &self.base {
            Base::TrueLru(_) => "m-insert(lru)",
            Base::TreePlru(_) => "m-insert(tplru)",
        }
    }

    fn on_hit(&mut self, set: usize, way: usize, _lines: &[LineState], _info: &AccessInfo) {
        // LIP/BIP promote to MRU on hit.
        self.touch_mru(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _lines: &[LineState], info: &AccessInfo) {
        if info.kind.is_instruction() {
            // Position unknown until the miss's flags resolve: park at LRU.
            self.set_lru(set, way);
        } else {
            self.touch_mru(set, way);
        }
    }

    fn on_fill_resolved(&mut self, set: usize, way: usize, lines: &[LineState], info: &AccessInfo) {
        // The line may have been evicted/replaced during the miss window.
        if !lines[way].valid {
            return;
        }
        if info.kind.is_instruction() && info.high_priority {
            self.touch_mru(set, way);
        }
    }

    fn victim(&mut self, set: usize, lines: &[LineState], _info: &AccessInfo) -> usize {
        match &mut self.base {
            Base::TrueLru(b) => b
                .lru_way(set, lines, |_, l| l.valid)
                .expect("victim() requires at least one valid line"),
            Base::TreePlru(b) => b
                .tree(set)
                .victim_masked(valid_mask(lines))
                .expect("victim() requires at least one valid line"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::LineKind;

    fn full_set(ways: usize, kind: LineKind) -> Vec<LineState> {
        (0..ways)
            .map(|i| LineState {
                tag: i as u64,
                valid: true,
                kind,
                ..LineState::invalid()
            })
            .collect()
    }

    fn instr() -> AccessInfo {
        AccessInfo::demand(LineKind::Instruction)
    }

    fn data() -> AccessInfo {
        AccessInfo::demand(LineKind::Data)
    }

    #[test]
    fn unresolved_instruction_fill_sits_at_lru() {
        for base in [RecencyBase::TrueLru, RecencyBase::TreePlru] {
            let mut p = InsertionPolicy::new(base, 1, 4);
            let lines = full_set(4, LineKind::Instruction);
            for w in 0..4 {
                p.on_fill(0, w, &lines, &instr());
            }
            // Way 3 filled last but parked at LRU; it must be the victim.
            assert_eq!(p.victim(0, &lines, &instr()), 3, "base {base:?}");
        }
    }

    #[test]
    fn resolved_high_priority_promotes_to_mru() {
        for base in [RecencyBase::TrueLru, RecencyBase::TreePlru] {
            let mut p = InsertionPolicy::new(base, 1, 4);
            let lines = full_set(4, LineKind::Instruction);
            for w in 0..4 {
                p.on_fill(0, w, &lines, &instr());
                p.on_fill_resolved(0, w, &lines, &instr().with_priority(w != 3));
            }
            // Ways 0..=2 promoted, way 3 resolved low: still the victim.
            assert_eq!(p.victim(0, &lines, &instr()), 3, "base {base:?}");
        }
    }

    #[test]
    fn resolved_low_priority_stays_lru() {
        let mut p = InsertionPolicy::new(RecencyBase::TrueLru, 1, 4);
        let lines = full_set(4, LineKind::Instruction);
        for w in 0..4 {
            p.on_fill(0, w, &lines, &instr());
            p.on_fill_resolved(0, w, &lines, &instr().with_priority(false));
        }
        // All parked LRU in order; last parked (3) is deepest-LRU.
        assert_eq!(p.victim(0, &lines, &instr()), 3);
    }

    #[test]
    fn data_lines_insert_mru_immediately() {
        let mut p = InsertionPolicy::new(RecencyBase::TrueLru, 1, 4);
        let lines = full_set(4, LineKind::Data);
        for w in 0..4 {
            p.on_fill(0, w, &lines, &data());
        }
        // Normal MRU insertion: way 0 is LRU.
        assert_eq!(p.victim(0, &lines, &data()), 0);
    }

    #[test]
    fn hits_promote_to_mru() {
        let mut p = InsertionPolicy::new(RecencyBase::TrueLru, 1, 4);
        let lines = full_set(4, LineKind::Instruction);
        for w in 0..4 {
            p.on_fill(0, w, &lines, &instr());
        }
        p.on_hit(0, 3, &lines, &instr());
        // Way 3 was deepest-LRU but the hit rescued it; victim is now 2.
        assert_eq!(p.victim(0, &lines, &instr()), 2);
    }

    #[test]
    fn resolve_on_replaced_way_is_ignored() {
        let mut p = InsertionPolicy::new(RecencyBase::TrueLru, 1, 2);
        let mut lines = full_set(2, LineKind::Instruction);
        p.on_fill(0, 0, &lines, &instr());
        p.on_fill(0, 1, &lines, &instr());
        lines[1].valid = false;
        // Must not panic or corrupt recency.
        p.on_fill_resolved(0, 1, &lines, &instr().with_priority(true));
        lines[1].valid = true;
        assert_eq!(p.victim(0, &lines, &instr()), 1);
    }
}
