//! Cost-aware *data-cache* replacement policies from the paper's related
//! work (§7.1), approximated for comparison:
//!
//! * [`LinPolicy`] — MLP-aware LIN (Qureshi et al., ISCA 2006): misses that
//!   occur with little memory-level parallelism are costlier; the victim
//!   choice is recency biased by a per-line cost estimated from the number
//!   of outstanding misses when the line was filled
//!   ([`AccessInfo::outstanding_misses`]).
//! * [`LacsPolicy`] — LACS (Kharbutli & Sheikh, IEEE TC 2014): cost is
//!   derived from how long the fill took ([`AccessInfo::fill_latency`]; the
//!   original counts instructions issued under the miss) and adjusted by
//!   reference behaviour after insertion.
//!
//! Both are faithful to the *shape* of the original proposals — cost
//! estimation hardware replaced by the simulator's equivalents — and exist
//! so the reproduction can demonstrate the paper's claim that data-oriented
//! cost-aware policies do not transfer to instruction caching.

use crate::line::LineState;
use crate::policy::{AccessInfo, ReplacementPolicy, TrueLruPolicy};

/// Maximum per-line cost value (3 bits).
const COST_MAX: u8 = 7;

/// MLP-aware LIN approximation. See module docs.
#[derive(Debug)]
pub struct LinPolicy {
    ways: usize,
    base: TrueLruPolicy,
    cost: Vec<u8>,
    /// Weight of cost relative to one recency-rank step.
    lambda: usize,
}

impl LinPolicy {
    /// Creates LIN state for `sets` x `ways`.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            ways,
            base: TrueLruPolicy::new(sets, ways),
            cost: vec![0; sets * ways],
            lambda: 2,
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }
}

impl ReplacementPolicy for LinPolicy {
    fn name(&self) -> &'static str {
        "lin"
    }

    fn on_hit(&mut self, set: usize, way: usize, lines: &[LineState], info: &AccessInfo) {
        self.base.on_hit(set, way, lines, info);
    }

    fn on_fill(&mut self, set: usize, way: usize, lines: &[LineState], info: &AccessInfo) {
        // Isolated misses (few outstanding) are the costly ones (no MLP to
        // amortize them): cost = COST_MAX - min(outstanding, COST_MAX).
        let i = self.idx(set, way);
        self.cost[i] = COST_MAX - info.outstanding_misses.min(COST_MAX);
        self.base.on_fill(set, way, lines, info);
    }

    fn victim(&mut self, set: usize, lines: &[LineState], _info: &AccessInfo) -> usize {
        // Rank valid ways by recency (0 = LRU) and add the cost bias.
        let mut order: Vec<usize> = (0..lines.len()).filter(|&w| lines[w].valid).collect();
        let stamps: Vec<(usize, usize)> = order
            .iter()
            .map(|&w| {
                let lru_first = self
                    .base
                    .lru_way(set, lines, |x, l| l.valid && x == w)
                    .expect("way is valid");
                (w, lru_first)
            })
            .collect();
        let _ = stamps;
        // Recency rank: repeatedly query LRU among the remaining ways.
        let mut rank = vec![0usize; lines.len()];
        let mut remaining: Vec<usize> = order.clone();
        let mut r = 0;
        while !remaining.is_empty() {
            let v = self
                .base
                .lru_way(set, lines, |w, l| l.valid && remaining.contains(&w))
                .expect("non-empty remaining");
            rank[v] = r;
            r += 1;
            remaining.retain(|&w| w != v);
        }
        order.sort_by_key(|&w| rank[w] + self.lambda * self.cost[self.idx(set, w)] as usize);
        order[0]
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        self.cost[i] = 0;
    }
}

/// LACS approximation. See module docs.
#[derive(Debug)]
pub struct LacsPolicy {
    ways: usize,
    base: TrueLruPolicy,
    cost: Vec<u8>,
}

impl LacsPolicy {
    /// Creates LACS state for `sets` x `ways`.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            ways,
            base: TrueLruPolicy::new(sets, ways),
            cost: vec![0; sets * ways],
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }
}

impl ReplacementPolicy for LacsPolicy {
    fn name(&self) -> &'static str {
        "lacs"
    }

    fn on_hit(&mut self, set: usize, way: usize, lines: &[LineState], info: &AccessInfo) {
        // Reuse raises a line's value (LACS's reference adjustment).
        let i = self.idx(set, way);
        self.cost[i] = (self.cost[i] + 1).min(COST_MAX);
        self.base.on_hit(set, way, lines, info);
    }

    fn on_fill(&mut self, set: usize, way: usize, lines: &[LineState], info: &AccessInfo) {
        // Longer fills are costlier to lose (the core covered fewer
        // instructions under them).
        let i = self.idx(set, way);
        self.cost[i] = ((info.fill_latency / 32) as u8).min(COST_MAX);
        self.base.on_fill(set, way, lines, info);
    }

    fn victim(&mut self, set: usize, lines: &[LineState], _info: &AccessInfo) -> usize {
        // Lowest cost first; recency (true LRU) breaks ties.
        let min_cost = (0..lines.len())
            .filter(|&w| lines[w].valid)
            .map(|w| self.cost[self.idx(set, w)])
            .min()
            .expect("victim() requires at least one valid line");
        self.base
            .lru_way(set, lines, |w, l| {
                l.valid && self.cost[self.idx(set, w)] == min_cost
            })
            .expect("some way has the minimum cost")
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        self.cost[i] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::LineKind;

    fn lines(n: usize) -> Vec<LineState> {
        (0..n)
            .map(|i| LineState {
                tag: i as u64,
                valid: true,
                kind: LineKind::Data,
                ..LineState::invalid()
            })
            .collect()
    }

    fn info() -> AccessInfo {
        AccessInfo::demand(LineKind::Data)
    }

    #[test]
    fn lin_prefers_evicting_high_mlp_fills() {
        let mut p = LinPolicy::new(1, 4);
        let ls = lines(4);
        // Way 0: isolated miss (cost 7); ways 1-3: high MLP (cost 0).
        let mut isolated = info();
        isolated.outstanding_misses = 0;
        let mut mlp = info();
        mlp.outstanding_misses = COST_MAX;
        p.on_fill(0, 0, &ls, &isolated);
        for w in 1..4 {
            p.on_fill(0, w, &ls, &mlp);
        }
        // Way 0 is oldest AND costly: bias keeps it; way 1 (cheap, old) goes.
        assert_eq!(p.victim(0, &ls, &info()), 1);
    }

    #[test]
    fn lin_degenerates_to_lru_for_equal_costs() {
        let mut p = LinPolicy::new(1, 4);
        let ls = lines(4);
        for w in 0..4 {
            p.on_fill(0, w, &ls, &info());
        }
        assert_eq!(p.victim(0, &ls, &info()), 0);
    }

    #[test]
    fn lacs_keeps_expensive_fills() {
        let mut p = LacsPolicy::new(1, 2);
        let ls = lines(2);
        let mut slow = info();
        slow.fill_latency = 150;
        let mut fast = info();
        fast.fill_latency = 12;
        p.on_fill(0, 0, &ls, &slow);
        p.on_fill(0, 1, &ls, &fast);
        assert_eq!(p.victim(0, &ls, &info()), 1, "cheap fill goes first");
    }

    #[test]
    fn lacs_reuse_raises_value() {
        let mut p = LacsPolicy::new(1, 2);
        let ls = lines(2);
        let mut fast = info();
        fast.fill_latency = 12;
        p.on_fill(0, 0, &ls, &fast);
        p.on_fill(0, 1, &ls, &fast);
        for _ in 0..3 {
            p.on_hit(0, 0, &ls, &info());
        }
        assert_eq!(p.victim(0, &ls, &info()), 1);
    }

    #[test]
    fn invalidate_clears_cost() {
        let mut p = LacsPolicy::new(1, 2);
        let ls = lines(2);
        let mut slow = info();
        slow.fill_latency = 200;
        p.on_fill(0, 0, &ls, &slow);
        p.on_invalidate(0, 0);
        assert_eq!(p.cost[0], 0);
        let _ = ls;
    }
}
