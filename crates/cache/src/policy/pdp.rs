//! Static Protecting Distance Policy (PDP), Duong et al., MICRO 2012 —
//! one of the paper's comparison points (Table 3).
//!
//! Each line carries a *remaining protecting distance* (RPD) initialized to
//! the protecting distance `PD` on insertion and on every hit, and
//! decremented on every access to its set. A line is *protected* while its
//! RPD is non-zero. Eviction prefers unprotected lines; if all lines are
//! protected the line closest to expiry is evicted (the original proposes
//! bypass, which the paper found ineffective for instruction lines — all
//! misses insert, per §2).

use crate::line::LineState;
use crate::policy::{AccessInfo, ReplacementPolicy};

/// Static PDP replacement.
#[derive(Debug)]
pub struct PdpPolicy {
    ways: usize,
    distance: u16,
    rpd: Vec<u16>,
}

impl PdpPolicy {
    /// Default protecting distance (in set accesses). The PDP paper computes
    /// PD from reuse-distance sampling; a static value near 4x associativity
    /// is in its reported useful range for 16-way LLCs.
    pub const DEFAULT_DISTANCE: u16 = 64;

    /// Creates PDP state for `sets` x `ways` with the given protecting
    /// distance.
    ///
    /// # Panics
    ///
    /// Panics if `distance == 0`.
    pub fn new(sets: usize, ways: usize, distance: u16) -> Self {
        assert!(distance > 0, "protecting distance must be positive");
        Self {
            ways,
            distance,
            rpd: vec![0; sets * ways],
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Decrements every line's RPD in `set` except `except`.
    fn age_set(&mut self, set: usize, except: usize) {
        for way in 0..self.ways {
            if way != except {
                let i = self.idx(set, way);
                self.rpd[i] = self.rpd[i].saturating_sub(1);
            }
        }
    }
}

impl ReplacementPolicy for PdpPolicy {
    fn name(&self) -> &'static str {
        "pdp"
    }

    fn on_hit(&mut self, set: usize, way: usize, _lines: &[LineState], _info: &AccessInfo) {
        self.age_set(set, way);
        let i = self.idx(set, way);
        self.rpd[i] = self.distance;
    }

    fn on_fill(&mut self, set: usize, way: usize, _lines: &[LineState], info: &AccessInfo) {
        self.age_set(set, way);
        let i = self.idx(set, way);
        // Prefetches get half protection: they have not proven reuse yet.
        self.rpd[i] = if info.is_prefetch {
            self.distance / 2
        } else {
            self.distance
        };
    }

    fn victim(&mut self, set: usize, lines: &[LineState], _info: &AccessInfo) -> usize {
        let mut best: Option<(u16, usize)> = None;
        for (way, line) in lines.iter().enumerate() {
            if !line.valid {
                continue;
            }
            let rpd = self.rpd[self.idx(set, way)];
            if best.is_none_or(|(b, _)| rpd < b) {
                best = Some((rpd, way));
            }
        }
        best.map(|(_, w)| w)
            .expect("victim() requires at least one valid line")
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        self.rpd[i] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::LineKind;

    fn full_set(ways: usize) -> Vec<LineState> {
        (0..ways)
            .map(|i| LineState {
                tag: i as u64,
                valid: true,
                kind: LineKind::Instruction,
                ..LineState::invalid()
            })
            .collect()
    }

    fn info() -> AccessInfo {
        AccessInfo::demand(LineKind::Instruction)
    }

    #[test]
    fn unprotected_line_is_preferred_victim() {
        let mut p = PdpPolicy::new(1, 4, 8);
        let lines = full_set(4);
        for w in 0..4 {
            p.on_fill(0, w, &lines, &info());
        }
        // Age way 0 to zero by hitting way 1 repeatedly.
        for _ in 0..8 {
            p.on_hit(0, 1, &lines, &info());
        }
        let v = p.victim(0, &lines, &info());
        assert_ne!(v, 1, "freshly protected line must not be victim");
        assert_eq!(p.rpd[v], 0, "victim should be unprotected");
    }

    #[test]
    fn all_protected_evicts_closest_to_expiry() {
        let mut p = PdpPolicy::new(1, 3, 100);
        let lines = full_set(3);
        p.on_fill(0, 0, &lines, &info());
        p.on_fill(0, 1, &lines, &info());
        p.on_fill(0, 2, &lines, &info());
        // RPDs now: way0 = 98, way1 = 99, way2 = 100.
        assert_eq!(p.victim(0, &lines, &info()), 0);
    }

    #[test]
    fn hit_renews_protection() {
        let mut p = PdpPolicy::new(1, 2, 4);
        let lines = full_set(2);
        p.on_fill(0, 0, &lines, &info());
        p.on_fill(0, 1, &lines, &info());
        p.on_hit(0, 0, &lines, &info());
        // way0 renewed to 4, way1 aged twice (fill of 0 did not age... fill
        // of 1 aged 0 once, hit of 0 aged 1 once): rpd1 = 3 < rpd0 = 4.
        assert_eq!(p.victim(0, &lines, &info()), 1);
    }

    #[test]
    fn prefetch_gets_reduced_protection() {
        let mut p = PdpPolicy::new(1, 2, 10);
        let lines = full_set(2);
        p.on_fill(0, 0, &lines, &AccessInfo::prefetch(LineKind::Instruction));
        p.on_fill(0, 1, &lines, &info());
        assert_eq!(p.victim(0, &lines, &info()), 0);
    }

    #[test]
    fn invalidate_clears_protection() {
        let mut p = PdpPolicy::new(1, 2, 10);
        let lines = full_set(2);
        p.on_fill(0, 0, &lines, &info());
        p.on_fill(0, 1, &lines, &info());
        p.on_invalidate(0, 1);
        assert_eq!(p.rpd[1], 0);
    }

    #[test]
    #[should_panic]
    fn zero_distance_rejected() {
        PdpPolicy::new(1, 2, 0);
    }
}
