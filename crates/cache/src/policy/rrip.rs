//! Re-Reference Interval Prediction policies: SRRIP, BRRIP and DRRIP
//! (Jaleel et al., ISCA 2010), as used in the paper's comparison (Table 3)
//! and as the L3's default policy (with the SFL MRU-insertion hint).

use crate::line::LineState;
use crate::policy::{AccessInfo, ReplacementPolicy};
use crate::rng::XorShift64;

/// Maximum re-reference prediction value for 2-bit RRPV.
const RRPV_MAX: u8 = 3;
/// "Long re-reference interval" insertion value (SRRIP-HP).
const RRPV_LONG: u8 = RRPV_MAX - 1;
/// BRRIP inserts with RRPV_LONG with probability 1/32, else distant.
const BRRIP_ONE_IN: u32 = 32;
/// PSEL saturating-counter width for DRRIP set dueling.
const PSEL_BITS: u32 = 10;
/// Leader-set stride: one SRRIP and one BRRIP leader per 32 sets.
const DUEL_STRIDE: usize = 32;

/// Which RRIP variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RripMode {
    /// SRRIP: always insert with long (RRPV = 2) prediction.
    Static,
    /// BRRIP: insert distant (RRPV = 3), long with probability 1/32.
    Bimodal,
    /// DRRIP: set dueling picks SRRIP or BRRIP for follower sets.
    Dynamic,
}

/// Role of a set in DRRIP's dueling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetRole {
    SrripLeader,
    BrripLeader,
    Follower,
}

fn role_of(set: usize) -> SetRole {
    match set % DUEL_STRIDE {
        0 => SetRole::SrripLeader,
        16 => SetRole::BrripLeader,
        _ => SetRole::Follower,
    }
}

/// SRRIP / BRRIP / DRRIP replacement.
#[derive(Debug)]
pub struct RripPolicy {
    mode: RripMode,
    ways: usize,
    rrpv: Vec<u8>,
    rng: XorShift64,
    /// DRRIP policy-selection counter; >= midpoint favours BRRIP.
    psel: u32,
}

impl RripPolicy {
    /// Creates RRIP state for `sets` x `ways`.
    pub fn new(mode: RripMode, sets: usize, ways: usize, seed: u64) -> Self {
        Self {
            mode,
            ways,
            rrpv: vec![RRPV_MAX; sets * ways],
            rng: XorShift64::new(seed ^ 0x5252_4950),
            psel: 1 << (PSEL_BITS - 1),
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// The insertion flavour effective for `set`.
    fn effective_mode(&self, set: usize) -> RripMode {
        match self.mode {
            RripMode::Dynamic => match role_of(set) {
                SetRole::SrripLeader => RripMode::Static,
                SetRole::BrripLeader => RripMode::Bimodal,
                SetRole::Follower => {
                    if self.psel >= 1 << (PSEL_BITS - 1) {
                        RripMode::Bimodal
                    } else {
                        RripMode::Static
                    }
                }
            },
            m => m,
        }
    }

    fn duel_on_miss(&mut self, set: usize) {
        if self.mode != RripMode::Dynamic {
            return;
        }
        let max = (1 << PSEL_BITS) - 1;
        match role_of(set) {
            // A miss in an SRRIP leader is evidence against SRRIP.
            SetRole::SrripLeader => self.psel = (self.psel + 1).min(max),
            SetRole::BrripLeader => self.psel = self.psel.saturating_sub(1),
            SetRole::Follower => {}
        }
    }

    fn insertion_rrpv(&mut self, set: usize, info: &AccessInfo) -> u8 {
        if info.mru_hint {
            // SFL hint (§5.1): "placed at the MRU position".
            return 0;
        }
        match self.effective_mode(set) {
            RripMode::Static => RRPV_LONG,
            RripMode::Bimodal | RripMode::Dynamic => {
                if self.rng.one_in(BRRIP_ONE_IN) {
                    RRPV_LONG
                } else {
                    RRPV_MAX
                }
            }
        }
    }
}

impl ReplacementPolicy for RripPolicy {
    fn name(&self) -> &'static str {
        match self.mode {
            RripMode::Static => "srrip",
            RripMode::Bimodal => "brrip",
            RripMode::Dynamic => "drrip",
        }
    }

    fn on_hit(&mut self, set: usize, way: usize, _lines: &[LineState], _info: &AccessInfo) {
        // Hit promotion to near-immediate re-reference (RRIP-HP).
        let i = self.idx(set, way);
        self.rrpv[i] = 0;
    }

    fn on_fill(&mut self, set: usize, way: usize, _lines: &[LineState], info: &AccessInfo) {
        self.duel_on_miss(set);
        let v = self.insertion_rrpv(set, info);
        let i = self.idx(set, way);
        self.rrpv[i] = v;
    }

    fn victim(&mut self, set: usize, lines: &[LineState], _info: &AccessInfo) -> usize {
        debug_assert!(lines.iter().any(|l| l.valid));
        loop {
            for (way, line) in lines.iter().enumerate() {
                if line.valid && self.rrpv[self.idx(set, way)] == RRPV_MAX {
                    return way;
                }
            }
            // Age everything and rescan.
            for (way, line) in lines.iter().enumerate() {
                if line.valid {
                    let i = self.idx(set, way);
                    self.rrpv[i] = (self.rrpv[i] + 1).min(RRPV_MAX);
                }
            }
        }
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        self.rrpv[i] = RRPV_MAX;
    }

    fn audit_set(&self, set: usize, lines: &[LineState]) -> Option<String> {
        for way in 0..lines.len() {
            match self.rrpv.get(self.idx(set, way)) {
                Some(&v) if v > RRPV_MAX => {
                    return Some(format!(
                        "rrpv[{set}][{way}] = {v} exceeds the 2-bit maximum {RRPV_MAX}"
                    ));
                }
                Some(_) => {}
                None => {
                    return Some(format!("rrpv table has no entry for set {set} way {way}"));
                }
            }
        }
        if self.psel >= 1 << PSEL_BITS {
            return Some(format!(
                "psel = {} exceeds the {PSEL_BITS}-bit saturating range",
                self.psel
            ));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::LineKind;

    fn full_set(ways: usize) -> Vec<LineState> {
        (0..ways)
            .map(|i| LineState {
                tag: i as u64,
                valid: true,
                kind: LineKind::Data,
                ..LineState::invalid()
            })
            .collect()
    }

    fn info() -> AccessInfo {
        AccessInfo::demand(LineKind::Data)
    }

    #[test]
    fn srrip_inserts_long_and_hits_promote() {
        let mut p = RripPolicy::new(RripMode::Static, 4, 4, 1);
        let lines = full_set(4);
        p.on_fill(0, 0, &lines, &info());
        assert_eq!(p.rrpv[0], RRPV_LONG);
        p.on_hit(0, 0, &lines, &info());
        assert_eq!(p.rrpv[0], 0);
    }

    #[test]
    fn victim_prefers_distant_lines() {
        let mut p = RripPolicy::new(RripMode::Static, 1, 4, 1);
        let lines = full_set(4);
        for w in 0..4 {
            p.on_fill(0, w, &lines, &info());
        }
        p.on_hit(0, 2, &lines, &info()); // rrpv[2] = 0
                                         // All at 2 except way 2 at 0: aging makes ways 0,1,3 reach 3 first.
        let v = p.victim(0, &lines, &info());
        assert_ne!(v, 2);
    }

    #[test]
    fn victim_ages_until_distant_exists() {
        let mut p = RripPolicy::new(RripMode::Static, 1, 2, 1);
        let lines = full_set(2);
        p.on_fill(0, 0, &lines, &info());
        p.on_hit(0, 0, &lines, &info());
        p.on_fill(0, 1, &lines, &info());
        p.on_hit(0, 1, &lines, &info());
        // Both at 0; aging must terminate and return a victim.
        let v = p.victim(0, &lines, &info());
        assert!(v < 2);
        assert!(p.rrpv.contains(&RRPV_MAX));
    }

    #[test]
    fn brrip_mostly_inserts_distant() {
        let mut p = RripPolicy::new(RripMode::Bimodal, 1, 4, 7);
        let lines = full_set(4);
        let mut distant = 0;
        for _ in 0..3200 {
            p.on_fill(0, 0, &lines, &info());
            if p.rrpv[0] == RRPV_MAX {
                distant += 1;
            }
        }
        // ~31/32 distant.
        assert!(distant > 2900, "distant = {distant}");
    }

    #[test]
    fn mru_hint_inserts_at_zero() {
        let mut p = RripPolicy::new(RripMode::Bimodal, 1, 4, 7);
        let lines = full_set(4);
        p.on_fill(0, 1, &lines, &info().with_mru_hint(true));
        assert_eq!(p.rrpv[1], 0);
    }

    #[test]
    fn drrip_leader_sets_follow_fixed_modes() {
        let p = RripPolicy::new(RripMode::Dynamic, 64, 4, 7);
        assert_eq!(p.effective_mode(0), RripMode::Static);
        assert_eq!(p.effective_mode(16), RripMode::Bimodal);
        assert_eq!(p.effective_mode(32), RripMode::Static);
    }

    #[test]
    fn drrip_psel_moves_followers() {
        let mut p = RripPolicy::new(RripMode::Dynamic, 64, 4, 7);
        let lines = full_set(4);
        // Hammer misses into the BRRIP leader: evidence against BRRIP.
        for _ in 0..2000 {
            p.on_fill(16, 0, &lines, &info());
        }
        assert_eq!(p.effective_mode(1), RripMode::Static);
        // Now hammer the SRRIP leader harder.
        for _ in 0..4000 {
            p.on_fill(0, 0, &lines, &info());
        }
        assert_eq!(p.effective_mode(1), RripMode::Bimodal);
    }

    #[test]
    fn invalidate_marks_way_distant() {
        let mut p = RripPolicy::new(RripMode::Static, 1, 4, 1);
        let lines = full_set(4);
        for w in 0..4 {
            p.on_fill(0, w, &lines, &info());
        }
        p.on_hit(0, 3, &lines, &info());
        p.on_invalidate(0, 3);
        assert_eq!(p.rrpv[3], RRPV_MAX);
    }
}
