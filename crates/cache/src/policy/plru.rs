//! Tree pseudo-LRU (TPLRU).
//!
//! The paper's evaluations use TPLRU everywhere (`ways - 1` bits per tree,
//! §4.2). The tree structure is exposed as [`PlruTree`] because the EMISSARY
//! policy keeps *two* trees per set (one per priority class) and walks the
//! appropriate one, "skipping any lines that do not match the priority
//! criteria".

use crate::line::LineState;
use crate::policy::{AccessInfo, ReplacementPolicy};

/// One pseudo-LRU tree over a power-of-two number of ways.
///
/// Internal nodes are stored as a bitset: node 0 is the root, node `i` has
/// children `2i + 1` / `2i + 2`; a bit of 0 means "the colder (victim) side
/// is the left subtree".
///
/// # Example
///
/// ```
/// use emissary_cache::policy::PlruTree;
///
/// let mut t = PlruTree::new(4);
/// t.touch(0);
/// t.touch(1);
/// // Ways 2..3 untouched; the victim walk lands on one of them.
/// assert!(t.victim_masked(0b1111).unwrap() >= 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlruTree {
    ways: usize,
    /// Bit `i` = direction bit of internal node `i` (1 = victim side is right).
    bits: u32,
}

impl PlruTree {
    /// Creates a tree over `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics unless `ways` is a power of two in `1..=32`.
    pub fn new(ways: usize) -> Self {
        assert!(
            ways.is_power_of_two() && (1..=32).contains(&ways),
            "TPLRU requires power-of-two ways in 1..=32, got {ways}"
        );
        Self { ways, bits: 0 }
    }

    /// Number of ways covered.
    pub fn ways(&self) -> usize {
        self.ways
    }

    #[inline]
    fn levels(&self) -> u32 {
        self.ways.trailing_zeros()
    }

    /// Records an access to `way`: every node on the root-to-leaf path is
    /// pointed *away* from the accessed side.
    pub fn touch(&mut self, way: usize) {
        debug_assert!(way < self.ways);
        let mut node = 0usize;
        for level in (0..self.levels()).rev() {
            let go_right = (way >> level) & 1 == 1;
            // Point the victim side away from where we went.
            if go_right {
                self.bits &= !(1 << node);
            } else {
                self.bits |= 1 << node;
            }
            node = 2 * node + 1 + usize::from(go_right);
        }
    }

    /// Points every node on the path *toward* `way`, making it the next
    /// victim of its subtree (the "LRU insert" used by LIP-style policies).
    pub fn point_to(&mut self, way: usize) {
        debug_assert!(way < self.ways);
        let mut node = 0usize;
        for level in (0..self.levels()).rev() {
            let go_right = (way >> level) & 1 == 1;
            if go_right {
                self.bits |= 1 << node;
            } else {
                self.bits &= !(1 << node);
            }
            node = 2 * node + 1 + usize::from(go_right);
        }
    }

    /// Walks the tree toward the victim, restricted to ways whose bit is set
    /// in `eligible`. At each node the pointed-to side is preferred; if that
    /// subtree contains no eligible way the other side is taken.
    ///
    /// Returns `None` when `eligible` selects no way.
    pub fn victim_masked(&self, eligible: u32) -> Option<usize> {
        let full_mask = if self.ways == 32 {
            u32::MAX
        } else {
            (1u32 << self.ways) - 1
        };
        let eligible = eligible & full_mask;
        if eligible == 0 {
            return None;
        }
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut width = self.ways;
        while width > 1 {
            let half = width / 2;
            let left_mask = Self::range_mask(lo, half) & eligible;
            let right_mask = Self::range_mask(lo + half, half) & eligible;
            let prefer_right = self.bits & (1 << node) != 0;
            let go_right = if prefer_right {
                right_mask != 0
            } else {
                left_mask == 0
            };
            node = 2 * node + 1 + usize::from(go_right);
            if go_right {
                lo += half;
            }
            width = half;
        }
        Some(lo)
    }

    /// Victim among all ways.
    pub fn victim(&self) -> usize {
        self.victim_masked(u32::MAX)
            .expect("ways >= 1, full mask cannot be empty")
    }

    #[inline]
    fn range_mask(lo: usize, width: usize) -> u32 {
        let m = if width >= 32 {
            u32::MAX
        } else {
            (1u32 << width) - 1
        };
        m << lo
    }
}

/// Plain tree-PLRU replacement: touch on hit and fill, victim from the tree
/// restricted to valid ways.
#[derive(Debug, Clone)]
pub struct TreePlruPolicy {
    trees: Vec<PlruTree>,
}

impl TreePlruPolicy {
    /// Creates TPLRU state for `sets` x `ways`.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            trees: vec![PlruTree::new(ways); sets],
        }
    }

    /// Mutable access to a set's tree (used by insertion treatments).
    pub fn tree_mut(&mut self, set: usize) -> &mut PlruTree {
        &mut self.trees[set]
    }

    /// Shared access to a set's tree.
    pub fn tree(&self, set: usize) -> &PlruTree {
        &self.trees[set]
    }
}

/// Bitmask of valid ways in a set.
pub(crate) fn valid_mask(lines: &[LineState]) -> u32 {
    lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.valid)
        .fold(0u32, |m, (w, _)| m | (1 << w))
}

impl ReplacementPolicy for TreePlruPolicy {
    fn name(&self) -> &'static str {
        "tplru"
    }

    fn on_hit(&mut self, set: usize, way: usize, _lines: &[LineState], _info: &AccessInfo) {
        self.trees[set].touch(way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _lines: &[LineState], _info: &AccessInfo) {
        self.trees[set].touch(way);
    }

    fn victim(&mut self, set: usize, lines: &[LineState], _info: &AccessInfo) -> usize {
        self.trees[set]
            .victim_masked(valid_mask(lines))
            .expect("victim() requires at least one valid line")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::LineKind;

    fn info() -> AccessInfo {
        AccessInfo::demand(LineKind::Instruction)
    }

    fn full_set(ways: usize) -> Vec<LineState> {
        (0..ways)
            .map(|i| LineState {
                tag: i as u64,
                valid: true,
                kind: LineKind::Instruction,
                ..LineState::invalid()
            })
            .collect()
    }

    #[test]
    fn untouched_tree_victims_way_zero() {
        let t = PlruTree::new(8);
        assert_eq!(t.victim(), 0);
    }

    #[test]
    fn touch_moves_victim_away() {
        let mut t = PlruTree::new(8);
        t.touch(0);
        assert_ne!(t.victim(), 0);
        // Tree PLRU is approximate, so an untouched way is only guaranteed
        // to be the victim when the path bits still point at it: touching
        // its sibling (4), its cousin subtree (6), then the other half (0)
        // leaves every node on the path directed at way 5.
        let mut t = PlruTree::new(8);
        for w in [4, 6, 0] {
            t.touch(w);
        }
        assert_eq!(t.victim(), 5);
    }

    #[test]
    fn point_to_makes_way_the_victim() {
        let mut t = PlruTree::new(16);
        for w in 0..16 {
            t.touch(w);
        }
        t.point_to(11);
        assert_eq!(t.victim(), 11);
    }

    #[test]
    fn masked_victim_skips_ineligible_subtrees() {
        let mut t = PlruTree::new(8);
        for w in 0..8 {
            t.touch(w);
        }
        // Only ways 2 and 6 eligible.
        let v = t.victim_masked((1 << 2) | (1 << 6)).unwrap();
        assert!(v == 2 || v == 6);
        assert_eq!(t.victim_masked(0), None);
    }

    #[test]
    fn masked_victim_single_way() {
        let t = PlruTree::new(8);
        for w in 0..8 {
            assert_eq!(t.victim_masked(1 << w), Some(w));
        }
    }

    #[test]
    fn recently_touched_way_is_not_victim_under_full_mask() {
        let mut t = PlruTree::new(16);
        let mut state = 0x1234_5678u64;
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let w = (state >> 33) as usize % 16;
            t.touch(w);
            assert_ne!(t.victim(), w, "victim equals just-touched way");
        }
    }

    #[test]
    fn plru_never_evicts_most_recent_among_eligible() {
        let mut t = PlruTree::new(8);
        t.touch(3);
        // 3 was just touched; with >=2 eligible ways, victim must differ.
        let v = t.victim_masked(0b1111_1111).unwrap();
        assert_ne!(v, 3);
    }

    #[test]
    fn policy_victims_only_valid_ways() {
        let mut p = TreePlruPolicy::new(1, 8);
        let mut lines = full_set(8);
        lines[0].valid = false;
        // Even though way 0 is the tree's cold way, it's invalid: skip it.
        let v = p.victim(0, &lines, &info());
        assert_ne!(v, 0);
        assert!(lines[v].valid);
    }

    #[test]
    fn ways_one_tree_degenerates() {
        let mut t = PlruTree::new(1);
        t.touch(0);
        assert_eq!(t.victim(), 0);
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_two() {
        PlruTree::new(6);
    }
}
