//! DCLIP — Dynamic Code Line Preservation (Jaleel et al., HPCA 2015's CLIP,
//! Table 3's "DCLIP" comparison point).
//!
//! CLIP "modif[ies] the re-reference predictions of instruction and data
//! lines separately [to] dynamically prioritize instructions in a cache when
//! the instructions cause L2 cache contention". We implement it on the RRIP
//! substrate: when code preservation is ON, instruction lines insert with a
//! near re-reference prediction (RRPV 0) while data lines insert distant
//! (RRPV 3, long with probability 1/32); when OFF, both insert as SRRIP.
//! Set dueling on *instruction* misses decides ON vs OFF dynamically.

use crate::line::LineState;
use crate::policy::{AccessInfo, ReplacementPolicy};
use crate::rng::XorShift64;

const RRPV_MAX: u8 = 3;
const RRPV_LONG: u8 = RRPV_MAX - 1;
const PSEL_BITS: u32 = 10;
const DUEL_STRIDE: usize = 32;

/// DCLIP replacement; see module docs.
#[derive(Debug)]
pub struct DclipPolicy {
    ways: usize,
    rrpv: Vec<u8>,
    rng: XorShift64,
    /// >= midpoint means code preservation is winning.
    psel: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    ClipLeader,
    SrripLeader,
    Follower,
}

fn role_of(set: usize) -> Role {
    match set % DUEL_STRIDE {
        0 => Role::ClipLeader,
        16 => Role::SrripLeader,
        _ => Role::Follower,
    }
}

impl DclipPolicy {
    /// Creates DCLIP state for `sets` x `ways`.
    pub fn new(sets: usize, ways: usize, seed: u64) -> Self {
        Self {
            ways,
            rrpv: vec![RRPV_MAX; sets * ways],
            rng: XorShift64::new(seed ^ 0xC11F),
            // Bias the starting state toward code preservation: server
            // workloads with instruction contention are the design target.
            psel: 1 << (PSEL_BITS - 1),
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    fn clip_on(&self, set: usize) -> bool {
        match role_of(set) {
            Role::ClipLeader => true,
            Role::SrripLeader => false,
            Role::Follower => self.psel >= 1 << (PSEL_BITS - 1),
        }
    }
}

impl ReplacementPolicy for DclipPolicy {
    fn name(&self) -> &'static str {
        "dclip"
    }

    fn on_hit(&mut self, set: usize, way: usize, _lines: &[LineState], _info: &AccessInfo) {
        let i = self.idx(set, way);
        self.rrpv[i] = 0;
    }

    fn on_fill(&mut self, set: usize, way: usize, _lines: &[LineState], info: &AccessInfo) {
        // Duel on instruction misses: an instruction miss in a leader set is
        // evidence against that leader's configuration.
        if info.kind.is_instruction() {
            let max = (1 << PSEL_BITS) - 1;
            match role_of(set) {
                Role::ClipLeader => self.psel = self.psel.saturating_sub(1),
                Role::SrripLeader => self.psel = (self.psel + 1).min(max),
                Role::Follower => {}
            }
        }
        let i = self.idx(set, way);
        self.rrpv[i] = if info.mru_hint {
            0
        } else if self.clip_on(set) {
            if info.kind.is_instruction() {
                0
            } else if self.rng.one_in(32) {
                RRPV_LONG
            } else {
                RRPV_MAX
            }
        } else {
            RRPV_LONG
        };
    }

    fn victim(&mut self, set: usize, lines: &[LineState], _info: &AccessInfo) -> usize {
        debug_assert!(lines.iter().any(|l| l.valid));
        loop {
            for (way, line) in lines.iter().enumerate() {
                if line.valid && self.rrpv[self.idx(set, way)] == RRPV_MAX {
                    return way;
                }
            }
            for (way, line) in lines.iter().enumerate() {
                if line.valid {
                    let i = self.idx(set, way);
                    self.rrpv[i] = (self.rrpv[i] + 1).min(RRPV_MAX);
                }
            }
        }
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        self.rrpv[i] = RRPV_MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::LineKind;

    fn full_set(ways: usize) -> Vec<LineState> {
        (0..ways)
            .map(|i| LineState {
                tag: i as u64,
                valid: true,
                kind: LineKind::Data,
                ..LineState::invalid()
            })
            .collect()
    }

    #[test]
    fn clip_on_prioritizes_instruction_fills() {
        let mut p = DclipPolicy::new(64, 4, 1);
        let lines = full_set(4);
        // Set 0 is a CLIP leader: always on.
        p.on_fill(0, 0, &lines, &AccessInfo::demand(LineKind::Instruction));
        assert_eq!(p.rrpv[0], 0);
    }

    #[test]
    fn clip_on_data_fills_mostly_distant() {
        let mut p = DclipPolicy::new(64, 4, 1);
        let lines = full_set(4);
        let mut distant = 0;
        for _ in 0..640 {
            p.on_fill(0, 1, &lines, &AccessInfo::demand(LineKind::Data));
            if p.rrpv[1] == RRPV_MAX {
                distant += 1;
            }
        }
        assert!(distant > 560, "distant = {distant}");
    }

    #[test]
    fn srrip_leader_inserts_long_for_both_kinds() {
        let mut p = DclipPolicy::new(64, 4, 1);
        let lines = full_set(4);
        p.on_fill(16, 0, &lines, &AccessInfo::demand(LineKind::Instruction));
        assert_eq!(p.rrpv[16 * 4], RRPV_LONG);
        p.on_fill(16, 1, &lines, &AccessInfo::demand(LineKind::Data));
        assert_eq!(p.rrpv[16 * 4 + 1], RRPV_LONG);
    }

    #[test]
    fn dueling_flips_followers_when_clip_loses() {
        let mut p = DclipPolicy::new(64, 4, 1);
        let lines = full_set(4);
        assert!(p.clip_on(1)); // initial bias: on
                               // Instruction misses hammering the CLIP leader turn it off.
        for _ in 0..600 {
            p.on_fill(0, 0, &lines, &AccessInfo::demand(LineKind::Instruction));
        }
        assert!(!p.clip_on(1));
        // And instruction misses in the SRRIP leader turn it back on.
        for _ in 0..1200 {
            p.on_fill(16, 0, &lines, &AccessInfo::demand(LineKind::Instruction));
        }
        assert!(p.clip_on(1));
    }

    #[test]
    fn victim_scan_terminates_with_all_near() {
        let mut p = DclipPolicy::new(64, 2, 1);
        let lines = full_set(2);
        p.on_fill(0, 0, &lines, &AccessInfo::demand(LineKind::Instruction));
        p.on_fill(0, 1, &lines, &AccessInfo::demand(LineKind::Instruction));
        let v = p.victim(0, &lines, &AccessInfo::demand(LineKind::Data));
        assert!(v < 2);
    }
}
