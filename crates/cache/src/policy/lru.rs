//! True LRU with exact per-line timestamps.

use crate::line::LineState;
use crate::policy::{AccessInfo, ReplacementPolicy};

/// Exact least-recently-used replacement.
///
/// Keeps a monotonically increasing stamp per way; the victim is the valid
/// way with the smallest stamp. Also exposes [`TrueLruPolicy::touch_mru`] /
/// [`TrueLruPolicy::set_lru`] so the `M:` insertion treatments can reuse it
/// as their recency base.
#[derive(Debug, Clone)]
pub struct TrueLruPolicy {
    ways: usize,
    stamps: Vec<u64>,
    /// Next stamp to hand out (global across sets; only relative order
    /// within a set matters).
    clock: u64,
    /// Strictly decreasing counter for forced-LRU placement.
    floor: u64,
}

impl TrueLruPolicy {
    /// Creates LRU state for `sets` x `ways`.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            ways,
            stamps: vec![0; sets * ways],
            clock: 1u64 << 32,
            floor: 1u64 << 32,
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Marks `way` most recently used.
    pub fn touch_mru(&mut self, set: usize, way: usize) {
        self.clock += 1;
        let i = self.idx(set, way);
        self.stamps[i] = self.clock;
    }

    /// Forces `way` into the least-recently-used position of its set.
    pub fn set_lru(&mut self, set: usize, way: usize) {
        self.floor -= 1;
        let i = self.idx(set, way);
        self.stamps[i] = self.floor;
    }

    /// The valid way with the smallest stamp, restricted by `eligible`.
    ///
    /// Returns `None` if no way satisfies the predicate.
    pub fn lru_way<F>(&self, set: usize, lines: &[LineState], eligible: F) -> Option<usize>
    where
        F: Fn(usize, &LineState) -> bool,
    {
        let mut best: Option<(u64, usize)> = None;
        for (way, line) in lines.iter().enumerate() {
            if !eligible(way, line) {
                continue;
            }
            let stamp = self.stamps[self.idx(set, way)];
            if best.is_none_or(|(s, _)| stamp < s) {
                best = Some((stamp, way));
            }
        }
        best.map(|(_, w)| w)
    }
}

impl ReplacementPolicy for TrueLruPolicy {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn on_hit(&mut self, set: usize, way: usize, _lines: &[LineState], _info: &AccessInfo) {
        self.touch_mru(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _lines: &[LineState], _info: &AccessInfo) {
        self.touch_mru(set, way);
    }

    fn victim(&mut self, set: usize, lines: &[LineState], _info: &AccessInfo) -> usize {
        self.lru_way(set, lines, |_, l| l.valid)
            .expect("victim() requires at least one valid line")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::LineKind;

    fn full_set(ways: usize) -> Vec<LineState> {
        (0..ways)
            .map(|i| LineState {
                tag: i as u64,
                valid: true,
                kind: LineKind::Instruction,
                ..LineState::invalid()
            })
            .collect()
    }

    fn info() -> AccessInfo {
        AccessInfo::demand(LineKind::Instruction)
    }

    #[test]
    fn evicts_least_recently_touched() {
        let mut p = TrueLruPolicy::new(1, 4);
        let lines = full_set(4);
        for w in 0..4 {
            p.on_fill(0, w, &lines, &info());
        }
        p.on_hit(0, 0, &lines, &info()); // 1 is now LRU
        assert_eq!(p.victim(0, &lines, &info()), 1);
    }

    #[test]
    fn stack_property_order_of_touches() {
        let mut p = TrueLruPolicy::new(1, 4);
        let lines = full_set(4);
        for w in [2, 0, 3, 1] {
            p.on_fill(0, w, &lines, &info());
        }
        // Eviction order must be 2, 0, 3, 1.
        assert_eq!(p.victim(0, &lines, &info()), 2);
        p.on_hit(0, 2, &lines, &info());
        assert_eq!(p.victim(0, &lines, &info()), 0);
    }

    #[test]
    fn set_lru_forces_next_victim() {
        let mut p = TrueLruPolicy::new(1, 4);
        let lines = full_set(4);
        for w in 0..4 {
            p.on_fill(0, w, &lines, &info());
        }
        p.set_lru(0, 3);
        assert_eq!(p.victim(0, &lines, &info()), 3);
    }

    #[test]
    fn successive_set_lru_stack_below_each_other() {
        let mut p = TrueLruPolicy::new(1, 4);
        let lines = full_set(4);
        for w in 0..4 {
            p.on_fill(0, w, &lines, &info());
        }
        p.set_lru(0, 1);
        p.set_lru(0, 2); // 2 placed *below* 1
        assert_eq!(p.victim(0, &lines, &info()), 2);
    }

    #[test]
    fn lru_way_respects_eligibility() {
        let mut p = TrueLruPolicy::new(1, 4);
        let lines = full_set(4);
        for w in 0..4 {
            p.on_fill(0, w, &lines, &info());
        }
        let v = p.lru_way(0, &lines, |w, _| w % 2 == 1);
        assert_eq!(v, Some(1));
        assert_eq!(p.lru_way(0, &lines, |_, _| false), None);
    }

    #[test]
    fn sets_are_independent() {
        let mut p = TrueLruPolicy::new(2, 2);
        let lines = full_set(2);
        p.on_fill(0, 0, &lines, &info());
        p.on_fill(0, 1, &lines, &info());
        p.on_fill(1, 1, &lines, &info());
        p.on_fill(1, 0, &lines, &info());
        assert_eq!(p.victim(0, &lines, &info()), 0);
        assert_eq!(p.victim(1, &lines, &info()), 1);
    }

    #[test]
    #[should_panic]
    fn victim_panics_on_all_invalid() {
        let mut p = TrueLruPolicy::new(1, 2);
        let lines = vec![LineState::invalid(); 2];
        p.victim(0, &lines, &info());
    }
}
