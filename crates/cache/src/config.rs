//! Cache and hierarchy geometry/latency configuration (paper Table 4).

use crate::addr::LINE_BYTES;

/// Geometry and latency of a single cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Short name used in stats output ("l1i", "l2", …).
    pub name: &'static str,
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Creates a config and validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the derived set count is zero or not a power of two, or if
    /// `ways` is zero.
    pub fn new(name: &'static str, capacity_bytes: u64, ways: usize, hit_latency: u64) -> Self {
        let cfg = Self {
            name,
            capacity_bytes,
            ways,
            hit_latency,
        };
        let sets = cfg.sets();
        assert!(ways > 0, "{name}: ways must be > 0");
        assert!(sets > 0, "{name}: derived set count is zero");
        assert!(
            sets.is_power_of_two(),
            "{name}: sets must be a power of two"
        );
        cfg
    }

    /// Checks the geometry without panicking: the typed-validation
    /// counterpart of the [`Self::new`] asserts, used by
    /// `SimConfig::validate` to reject degenerate configs before they reach
    /// the machine. Returns a description of the first problem found.
    pub fn geometry_error(&self) -> Option<String> {
        if self.ways == 0 {
            return Some(format!("{}: ways must be > 0", self.name));
        }
        let sets = self.sets();
        if sets == 0 {
            return Some(format!(
                "{}: capacity {} B with {} ways derives zero sets",
                self.name, self.capacity_bytes, self.ways
            ));
        }
        if !sets.is_power_of_two() {
            return Some(format!(
                "{}: derived set count {sets} is not a power of two",
                self.name
            ));
        }
        None
    }

    /// Number of sets implied by capacity, line size and ways.
    pub fn sets(&self) -> usize {
        (self.capacity_bytes / LINE_BYTES) as usize / self.ways
    }

    /// Number of lines the cache can hold.
    pub fn lines(&self) -> usize {
        self.sets() * self.ways
    }
}

/// Which policy runs in the unified L2 is chosen by the caller; everything
/// else about the hierarchy is configured here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache (32 kB, 8-way, 2-cycle hit).
    pub l1i: CacheConfig,
    /// L1 data cache (64 kB, 8-way, 2-cycle hit).
    pub l1d: CacheConfig,
    /// Unified, inclusive L2 (1 MB, 16-way, 12-cycle hit).
    pub l2: CacheConfig,
    /// Shared exclusive victim L3 (2 MB, 16-way, 32-cycle hit).
    pub l3: CacheConfig,
    /// Main-memory access latency in cycles.
    pub dram_latency: u64,
    /// Next-line prefetcher into L1D on L1D demand misses.
    pub l1d_nlp: bool,
    /// Next-line prefetcher into L2 on L2 demand misses.
    pub l2_nlp: bool,
    /// Next-line prefetcher into L3 on L3 demand misses.
    pub l3_nlp: bool,
    /// §5.6 "zero-cycle miss latency for all capacity and conflict
    /// instruction misses in the L2": non-compulsory L2 instruction misses
    /// are served at L2-hit latency.
    pub ideal_l2_instr: bool,
    /// Seed for the hierarchy's deterministic RNG streams.
    pub seed: u64,
}

impl HierarchyConfig {
    /// The Alderlake-like model of Table 4, with NLP enabled for L1D, L2 and
    /// L3 as in §5.1.
    pub fn alderlake_like() -> Self {
        Self {
            l1i: CacheConfig::new("l1i", 32 * 1024, 8, 2),
            l1d: CacheConfig::new("l1d", 64 * 1024, 8, 2),
            l2: CacheConfig::new("l2", 1024 * 1024, 16, 12),
            l3: CacheConfig::new("l3", 2 * 1024 * 1024, 16, 32),
            dram_latency: 150,
            l1d_nlp: true,
            l2_nlp: true,
            l3_nlp: true,
            ideal_l2_instr: false,
            seed: 0xE1515,
        }
    }

    /// Figure 1's environment: same geometry but *no prefetchers*.
    pub fn figure1() -> Self {
        Self {
            l1d_nlp: false,
            l2_nlp: false,
            l3_nlp: false,
            ..Self::alderlake_like()
        }
    }

    /// Checks every cache's geometry without panicking (see
    /// [`CacheConfig::geometry_error`]). Returns the first problem found.
    pub fn geometry_error(&self) -> Option<String> {
        [&self.l1i, &self.l1d, &self.l2, &self.l3]
            .into_iter()
            .find_map(CacheConfig::geometry_error)
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::alderlake_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_geometries() {
        let h = HierarchyConfig::alderlake_like();
        assert_eq!(h.l1i.sets(), 64); // 32kB / 64B / 8
        assert_eq!(h.l1d.sets(), 128);
        assert_eq!(h.l2.sets(), 1024); // 1MB / 64B / 16
        assert_eq!(h.l3.sets(), 2048);
        assert_eq!(h.l2.lines(), 16384);
    }

    #[test]
    fn figure1_disables_prefetchers_only() {
        let f = HierarchyConfig::figure1();
        assert!(!f.l1d_nlp && !f.l2_nlp && !f.l3_nlp);
        assert_eq!(f.l2, HierarchyConfig::alderlake_like().l2);
    }

    #[test]
    fn geometry_error_catches_degenerate_shapes_without_panicking() {
        let good = CacheConfig::new("ok", 32 * 1024, 8, 2);
        assert_eq!(good.geometry_error(), None);
        let zero_ways = CacheConfig {
            name: "bad",
            capacity_bytes: 1024,
            ways: 0,
            hit_latency: 1,
        };
        assert!(zero_ways.geometry_error().unwrap().contains("ways"));
        let zero_sets = CacheConfig {
            name: "bad",
            capacity_bytes: 64,
            ways: 8,
            hit_latency: 1,
        };
        assert!(zero_sets.geometry_error().unwrap().contains("zero sets"));
        let odd_sets = CacheConfig {
            name: "bad",
            capacity_bytes: 3 * 1024,
            ways: 8,
            hit_latency: 1,
        };
        assert!(odd_sets.geometry_error().unwrap().contains("power of two"));
        let mut h = HierarchyConfig::alderlake_like();
        assert_eq!(h.geometry_error(), None);
        h.l2.ways = 0;
        assert!(h.geometry_error().is_some());
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_two_sets() {
        CacheConfig::new("bad", 3 * 1024, 8, 1);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_ways() {
        CacheConfig::new("bad", 1024, 0, 1);
    }
}
