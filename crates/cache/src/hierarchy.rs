//! The paper's three-level memory hierarchy (Table 4, §5.1).
//!
//! * Private L1I / L1D (TPLRU by default; true LRU for Figure 1's setup).
//! * Unified **inclusive** L2 whose replacement policy is the experimental
//!   variable — injected by the caller (TPLRU baseline, `M:` treatments,
//!   RRIP family, PDP, DCLIP, or the EMISSARY `P(N)` family from
//!   `emissary-core`).
//! * Shared **exclusive victim** L3 running DRRIP with the SFL bit: an L2
//!   line that was served from L3 re-enters L3 at the MRU position on
//!   eviction; lines fetched from memory enter L3 only when evicted from L2.
//! * Next-line prefetchers (NLP) for L1D, L2 and L3, as in the
//!   Alderlake-like model.
//!
//! # Timing model
//!
//! The hierarchy is trace-driven with *eager fills*: a miss structurally
//! installs the line immediately but reports a `ready_at` cycle in the
//! future; an in-flight table coalesces later requests to the same line (an
//! MSHR equivalent), so a demand fetch that arrives while an FDIP prefetch
//! is outstanding observes the remaining latency — the "late prefetch"
//! behaviour that produces decode starvation in the paper's §3.
//!
//! The §5.6 ideal model ("zero-cycle miss latency for all capacity and
//! conflict instruction misses in the L2") is implemented by serving
//! non-compulsory L2 instruction misses at L2-hit latency while leaving all
//! structural behaviour unchanged.

use emissary_obs::{Level, TraceEvent, Tracer};

use crate::cache::Cache;
use crate::config::HierarchyConfig;
use crate::line::{LineKind, LineState};
use crate::linemap::{LineMap, LineSet};
use crate::policy::{AccessInfo, PolicyImpl, PolicyKind};

/// Which level ultimately supplied the requested line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServedBy {
    /// Hit in the relevant L1.
    L1,
    /// L1 miss, L2 hit.
    L2,
    /// L2 miss, L3 hit.
    L3,
    /// Missed the whole hierarchy.
    Memory,
    /// Joined an outstanding miss to the same line (MSHR hit).
    InFlight,
}

impl ServedBy {
    /// True when the request left the private L1.
    pub fn missed_l1(self) -> bool {
        !matches!(self, ServedBy::L1)
    }

    /// The observability [`Level`] naming this serving level.
    pub fn level(self) -> Level {
        match self {
            ServedBy::L1 => Level::L1,
            ServedBy::L2 => Level::L2,
            ServedBy::L3 => Level::L3,
            ServedBy::Memory => Level::Memory,
            ServedBy::InFlight => Level::InFlight,
        }
    }
}

/// Outcome of a hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Cycle at which the data is available to the requester.
    pub ready_at: u64,
    /// Level that served the request.
    pub served_by: ServedBy,
    /// For [`ServedBy::InFlight`] joins, the level serving the original
    /// request; equals `served_by` otherwise.
    pub source: ServedBy,
    /// True when this access installed a new line on the instruction path;
    /// the caller must later invoke
    /// [`Hierarchy::resolve_instr_fill`] with the miss's resolved
    /// starvation flags (see [`crate::policy`] docs).
    pub needs_resolution: bool,
}

/// Hierarchy-wide counters not attributable to a single cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Lines read from main memory.
    pub dram_reads: u64,
    /// Dirty lines written back to main memory.
    pub dram_writes: u64,
    /// Next-line prefetches issued (all levels).
    pub nlp_issued: u64,
    /// Ideal-L2 mode: non-compulsory instruction misses served at hit
    /// latency.
    pub ideal_l2_saves: u64,
    /// Demand requests that joined an in-flight miss.
    pub inflight_joins: u64,
}

/// The three-level hierarchy. See module docs.
#[derive(Debug)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    /// L1 instruction cache.
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    /// Unified inclusive L2.
    pub l2: Cache,
    /// Shared exclusive victim L3.
    pub l3: Cache,
    /// line -> (ready cycle, original serving level).
    inflight_instr: LineMap<(u64, ServedBy)>,
    inflight_data: LineMap<(u64, ServedBy)>,
    /// Every instruction line ever requested (compulsory-miss tracking and
    /// the Figure 4 footprint metric).
    touched_instr: LineSet,
    stats: HierarchyStats,
    /// Observability handle; disabled by default (one branch per emit site).
    tracer: Tracer,
}

impl Hierarchy {
    /// Builds the hierarchy with the given L2 policy. L1s use `l1_policy`
    /// (TPLRU in the main evaluation, true LRU in Figure 1); the L3 always
    /// runs DRRIP (§5.1).
    pub fn new(
        cfg: HierarchyConfig,
        l1_policy: PolicyKind,
        l2_policy: impl Into<PolicyImpl>,
    ) -> Self {
        let l1i = Cache::new(
            cfg.l1i.clone(),
            l1_policy.build(cfg.l1i.sets(), cfg.l1i.ways, cfg.seed ^ 1),
        );
        let l1d = Cache::new(
            cfg.l1d.clone(),
            l1_policy.build(cfg.l1d.sets(), cfg.l1d.ways, cfg.seed ^ 2),
        );
        let l2 = Cache::new(cfg.l2.clone(), l2_policy);
        let l3 = Cache::new(
            cfg.l3.clone(),
            PolicyKind::Drrip.build(cfg.l3.sets(), cfg.l3.ways, cfg.seed ^ 3),
        );
        Self {
            cfg,
            l1i,
            l1d,
            l2,
            l3,
            inflight_instr: LineMap::new(),
            inflight_data: LineMap::new(),
            touched_instr: LineSet::new(),
            stats: HierarchyStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Enables event tracing for this hierarchy and its L2 policy. The
    /// tracer's cycle stamp is refreshed on every timed access, so events
    /// emitted below the access API carry the right cycle.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.l2.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// The hierarchy's tracer handle (disabled unless
    /// [`set_tracer`](Self::set_tracer) was called).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Convenience constructor with TPLRU L1s (the paper's default).
    pub fn with_l2_policy(cfg: HierarchyConfig, l2_policy: impl Into<PolicyImpl>) -> Self {
        Self::new(cfg, PolicyKind::TreePlru, l2_policy)
    }

    /// The configuration in effect.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Hierarchy-wide counters.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Number of distinct instruction lines ever requested (Figure 4's
    /// footprint metric is this count times the line size).
    pub fn instr_footprint_lines(&self) -> usize {
        self.touched_instr.len()
    }

    /// Exports per-level cache counters and hierarchy-wide counters into
    /// metrics cells. Called once per run after simulation ends; never on
    /// the access path.
    pub fn metrics_into(&self, m: &mut emissary_obs::LocalMetrics) {
        self.l1i.stats().metrics_into("l1i", m);
        self.l1d.stats().metrics_into("l1d", m);
        self.l2.stats().metrics_into("l2", m);
        self.l3.stats().metrics_into("l3", m);
        m.count("emissary_dram_reads_total", &[], self.stats.dram_reads);
        m.count("emissary_dram_writes_total", &[], self.stats.dram_writes);
        m.count("emissary_nlp_issued_total", &[], self.stats.nlp_issued);
        m.count(
            "emissary_ideal_l2_saves_total",
            &[],
            self.stats.ideal_l2_saves,
        );
        m.count(
            "emissary_inflight_joins_total",
            &[],
            self.stats.inflight_joins,
        );
    }

    /// Resets per-cache and hierarchy counters (warmup boundary). Footprint
    /// tracking is *not* reset: compulsory misses stay compulsory.
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.l3.reset_stats();
        self.stats = HierarchyStats::default();
    }

    /// An instruction-side access (demand fetch or FDIP prefetch) to a line
    /// address at cycle `now`.
    pub fn access_instr(&mut self, line: u64, now: u64, is_prefetch: bool) -> MemAccess {
        self.tracer.set_now(now);
        let first_touch = self.touched_instr.insert(line);
        // In-flight coalescing.
        if let Some(&(ready, source)) = self.inflight_instr.get(line) {
            if now < ready {
                if !is_prefetch {
                    self.stats.inflight_joins += 1;
                    // The demand observes an L1I miss served by the MSHR.
                    self.l1i.stats_mut().instr_misses += 1;
                }
                return MemAccess {
                    ready_at: ready.max(now + self.cfg.l1i.hit_latency),
                    served_by: ServedBy::InFlight,
                    source,
                    needs_resolution: false,
                };
            }
            self.inflight_instr.remove(line);
        }
        let info = if is_prefetch {
            AccessInfo::prefetch(LineKind::Instruction)
        } else {
            AccessInfo::demand(LineKind::Instruction)
        };
        if self.l1i.lookup(line, &info).is_some() {
            return MemAccess {
                ready_at: now + self.cfg.l1i.hit_latency,
                served_by: ServedBy::L1,
                source: ServedBy::L1,
                needs_resolution: false,
            };
        }
        // L1I miss: descend to L2.
        let (served_by, mut latency, installed) = if self.l2.lookup(line, &info).is_some() {
            (ServedBy::L2, self.cfg.l2.hit_latency, true)
        } else {
            let (src, lat, filled) = self.fetch_into_l2(line, &info);
            if self.cfg.l2_nlp && !is_prefetch {
                self.nlp_into_l2(line + 1, LineKind::Instruction, now);
            }
            (src, lat, filled)
        };
        // §5.6 ideal-L2 override: capacity/conflict (non-compulsory) L2
        // instruction misses are served at L2-hit latency.
        if self.cfg.ideal_l2_instr
            && matches!(served_by, ServedBy::L3 | ServedBy::Memory)
            && !first_touch
        {
            latency = self.cfg.l2.hit_latency;
            self.stats.ideal_l2_saves += 1;
        }
        // Fill L1I; an evicted line communicates its priority bit to the
        // inclusive L2 copy (§3). A bypassed L2 fill skips the L1I fill too
        // (inclusion): the fetch is streamed to the core uncached.
        if installed {
            let out = self.l1i.fill(line, &info);
            if let Some(evicted) = out.evicted {
                if evicted.priority {
                    self.l2.set_priority(evicted.tag, true);
                }
            }
        }
        let ready_at = now + latency;
        if installed && latency > self.cfg.l1i.hit_latency {
            self.inflight_instr.insert(line, (ready_at, served_by));
        }
        MemAccess {
            ready_at,
            served_by,
            source: served_by,
            needs_resolution: installed,
        }
    }

    /// A data-side access (load, store, or L1D NLP prefetch).
    pub fn access_data(
        &mut self,
        line: u64,
        now: u64,
        is_write: bool,
        is_prefetch: bool,
    ) -> MemAccess {
        self.tracer.set_now(now);
        if let Some(&(ready, source)) = self.inflight_data.get(line) {
            if now < ready {
                if !is_prefetch {
                    self.stats.inflight_joins += 1;
                    self.l1d.stats_mut().data_misses += 1;
                    if is_write {
                        self.l1d.set_dirty(line, true);
                    }
                }
                return MemAccess {
                    ready_at: ready.max(now + self.cfg.l1d.hit_latency),
                    served_by: ServedBy::InFlight,
                    source,
                    needs_resolution: false,
                };
            }
            self.inflight_data.remove(line);
        }
        let mut info = if is_prefetch {
            AccessInfo::prefetch(LineKind::Data)
        } else {
            AccessInfo::demand(LineKind::Data)
        };
        info.is_write = is_write;
        if self.l1d.lookup(line, &info).is_some() {
            return MemAccess {
                ready_at: now + self.cfg.l1d.hit_latency,
                served_by: ServedBy::L1,
                source: ServedBy::L1,
                needs_resolution: false,
            };
        }
        let (served_by, latency, installed) = if self.l2.lookup(line, &info).is_some() {
            (ServedBy::L2, self.cfg.l2.hit_latency, true)
        } else {
            let (src, lat, filled) = self.fetch_into_l2(line, &info);
            if self.cfg.l2_nlp && !is_prefetch {
                self.nlp_into_l2(line + 1, LineKind::Data, now);
            }
            (src, lat, filled)
        };
        if installed {
            let out = self.l1d.fill(line, &info);
            if let Some(evicted) = out.evicted {
                if evicted.dirty {
                    // Write back into the inclusive L2 copy.
                    if !self.l2.set_dirty(evicted.tag, true) {
                        // Inclusion was broken only by an intervening L2
                        // eviction in this same call; the data goes to memory.
                        self.stats.dram_writes += 1;
                    }
                }
            }
        }
        if self.cfg.l1d_nlp && !is_prefetch && served_by.missed_l1() {
            self.nlp_into_l1d(line + 1, now);
        }
        let ready_at = now + latency;
        if installed && latency > self.cfg.l1d.hit_latency {
            self.inflight_data.insert(line, (ready_at, served_by));
        }
        MemAccess {
            ready_at,
            served_by,
            source: served_by,
            needs_resolution: false,
        }
    }

    /// Brings `line` into the L2 from L3 or memory, maintaining exclusivity,
    /// inclusion and the SFL bit. Returns the serving level, the latency,
    /// and whether the line was actually installed (a bypassing policy may
    /// refuse the fill; the data is still delivered to the requester).
    fn fetch_into_l2(&mut self, line: u64, info: &AccessInfo) -> (ServedBy, u64, bool) {
        let (served_by, latency, sfl) = if self.l3.lookup(line, info).is_some() {
            // Exclusive victim cache: the line moves out of L3.
            self.l3.invalidate(line);
            (ServedBy::L3, self.cfg.l3.hit_latency, true)
        } else {
            self.stats.dram_reads += 1;
            if self.cfg.l3_nlp && !info.is_prefetch {
                self.nlp_into_l3(line + 1);
            }
            (ServedBy::Memory, self.cfg.dram_latency, false)
        };
        let mut fill_info = *info;
        fill_info.outstanding_misses =
            (self.inflight_instr.len() + self.inflight_data.len()).min(255) as u8;
        fill_info.fill_latency = latency.min(u64::from(u16::MAX)) as u16;
        let out = self.l2.fill(line, &fill_info);
        if out.filled() {
            self.l2.set_sfl(line, sfl);
            self.tracer.emit_with(|cycle| TraceEvent::L2Fill {
                cycle,
                line,
                source: served_by.level(),
                high_priority: fill_info.high_priority,
            });
        } else {
            self.tracer
                .emit_with(|cycle| TraceEvent::L2Bypass { cycle, line });
        }
        if let Some(evicted) = out.evicted {
            self.handle_l2_eviction(evicted);
        }
        (served_by, latency, out.filled())
    }

    /// Back-invalidates L1 copies (inclusion) and installs the victim into
    /// the exclusive L3, honouring the SFL MRU hint.
    fn handle_l2_eviction(&mut self, evicted: LineState) {
        self.tracer.emit_with(|cycle| TraceEvent::L2Evict {
            cycle,
            line: evicted.tag,
            high_priority: evicted.priority,
        });
        let mut dirty = evicted.dirty;
        match evicted.kind {
            LineKind::Instruction => {
                self.l1i.invalidate(evicted.tag);
            }
            LineKind::Data => {
                if let Some(l1_copy) = self.l1d.invalidate(evicted.tag) {
                    dirty |= l1_copy.dirty;
                }
            }
        }
        let mut info = AccessInfo::demand(evicted.kind).with_mru_hint(evicted.sfl);
        info.is_write = dirty;
        debug_assert!(!self.l3.contains(evicted.tag), "exclusivity violated");
        let out = self.l3.fill(evicted.tag, &info);
        if let Some(l3_victim) = out.evicted {
            if l3_victim.dirty {
                self.stats.dram_writes += 1;
            }
        }
    }

    /// L1D next-line prefetch through the full data path.
    fn nlp_into_l1d(&mut self, line: u64, now: u64) {
        if self.l1d.contains(line) || self.inflight_data.contains_key(line) {
            return;
        }
        self.stats.nlp_issued += 1;
        self.access_data(line, now, false, true);
    }

    /// L2 next-line prefetch. The fill is structural-immediate but its
    /// *timing* is honest: the line is registered in the in-flight table
    /// with the latency of its true source, so a demand that arrives before
    /// the prefetch completes waits out the remainder (late prefetch).
    fn nlp_into_l2(&mut self, line: u64, kind: LineKind, now: u64) {
        if self.l2.contains(line) {
            return;
        }
        let inflight = match kind {
            LineKind::Instruction => &mut self.inflight_instr,
            LineKind::Data => &mut self.inflight_data,
        };
        if inflight.contains_key(line) {
            return;
        }
        self.stats.nlp_issued += 1;
        let info = AccessInfo::prefetch(kind);
        // Count the L2 prefetch lookup miss, then fetch.
        self.l2.lookup(line, &info);
        let (src, lat, filled) = self.fetch_into_l2(line, &info);
        if filled {
            let inflight = match kind {
                LineKind::Instruction => &mut self.inflight_instr,
                LineKind::Data => &mut self.inflight_data,
            };
            inflight.insert(line, (now + lat, src));
        }
    }

    /// L3 next-line prefetch. Skipped when the line is already above L3
    /// (exclusivity).
    fn nlp_into_l3(&mut self, line: u64) {
        if self.l3.contains(line) || self.l2.contains(line) {
            return;
        }
        self.stats.nlp_issued += 1;
        self.stats.dram_reads += 1;
        let info = AccessInfo::prefetch(LineKind::Data);
        self.l3.fill(line, &info);
    }

    /// Marks the L1I copy of `line` high-priority; if the line is no longer
    /// in L1I the inclusive L2 copy is marked directly. Returns true if a
    /// copy was found.
    pub fn mark_instr_priority(&mut self, line: u64) -> bool {
        let marked = if self.l1i.set_priority(line, true) {
            true
        } else {
            self.l2.set_priority(line, true)
        };
        if marked {
            self.tracer.emit_with(|cycle| TraceEvent::PriorityMark {
                cycle,
                line,
                deferred: false,
            });
        }
        marked
    }

    /// Applies the deferred insertion update for an instruction miss whose
    /// starvation flags are now known (`high` = the selection outcome).
    pub fn resolve_instr_fill(&mut self, line: u64, high: bool) {
        let info = AccessInfo::demand(LineKind::Instruction).with_priority(high);
        self.l1i.resolve_fill(line, &info);
        self.l2.resolve_fill(line, &info);
        if high {
            self.tracer.emit_with(|cycle| TraceEvent::PriorityMark {
                cycle,
                line,
                deferred: true,
            });
        }
    }

    /// §6 reset mechanism: clears all priority bits in L1I and L2.
    pub fn reset_instr_priorities(&mut self) {
        self.l1i.reset_priorities();
        self.l2.reset_priorities();
    }

    /// Number of misses currently outstanding (instruction + data in-flight
    /// tables) — the MSHR population reported in watchdog state dumps.
    pub fn outstanding_misses(&self) -> usize {
        self.inflight_instr.len() + self.inflight_data.len()
    }

    /// Read-only structural audit of the whole hierarchy: every cache's
    /// per-set invariants (see [`Cache::audit`]) plus the cross-level
    /// inclusion and exclusivity pairings. Returns every violation found.
    pub fn audit(&self) -> Vec<crate::audit::AuditViolation> {
        use crate::audit::AuditViolation;
        let mut violations = Vec::new();
        violations.extend(self.l1i.audit(Level::L1));
        violations.extend(self.l1d.audit(Level::L1));
        violations.extend(self.l2.audit(Level::L2));
        violations.extend(self.l3.audit(Level::L3));
        for l1_line in self.l1i.iter_valid().chain(self.l1d.iter_valid()) {
            if !self.l2.contains(l1_line.tag) {
                violations.push(AuditViolation {
                    invariant: "inclusion",
                    level: Level::L1,
                    set: 0,
                    detail: l1_line.tag,
                    message: format!("L1 line {:#x} has no copy in the inclusive L2", l1_line.tag),
                });
            }
        }
        for l3_line in self.l3.iter_valid() {
            if self.l2.contains(l3_line.tag) {
                violations.push(AuditViolation {
                    invariant: "exclusivity",
                    level: Level::L3,
                    set: 0,
                    detail: l3_line.tag,
                    message: format!(
                        "line {:#x} resident in both L2 and the exclusive victim L3",
                        l3_line.tag
                    ),
                });
            }
        }
        violations
    }

    /// Checks the inclusion invariant (every valid L1 line resident in L2).
    /// Intended for tests; O(L1 lines) with L2 probes.
    pub fn check_inclusion(&self) -> bool {
        self.l1i
            .iter_valid()
            .chain(self.l1d.iter_valid())
            .all(|l| self.l2.contains(l.tag))
    }

    /// Checks the L2/L3 exclusivity invariant.
    pub fn check_exclusivity(&self) -> bool {
        self.l3.iter_valid().all(|l| !self.l2.contains(l.tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, HierarchyConfig};

    /// A tiny hierarchy so evictions happen quickly in tests.
    fn tiny_cfg() -> HierarchyConfig {
        HierarchyConfig {
            l1i: CacheConfig::new("l1i", 2 * 2 * 64, 2, 2),
            l1d: CacheConfig::new("l1d", 2 * 2 * 64, 2, 2),
            l2: CacheConfig::new("l2", 4 * 4 * 64, 4, 12),
            l3: CacheConfig::new("l3", 8 * 4 * 64, 4, 32),
            dram_latency: 150,
            l1d_nlp: false,
            l2_nlp: false,
            l3_nlp: false,
            ideal_l2_instr: false,
            seed: 7,
        }
    }

    fn tiny() -> Hierarchy {
        let cfg = tiny_cfg();
        let pol = PolicyKind::TreePlru.build(cfg.l2.sets(), cfg.l2.ways, 9);
        Hierarchy::with_l2_policy(cfg, pol)
    }

    #[test]
    fn cold_instr_access_goes_to_memory() {
        let mut h = tiny();
        let a = h.access_instr(100, 0, false);
        assert_eq!(a.served_by, ServedBy::Memory);
        assert_eq!(a.ready_at, 150);
        assert!(a.needs_resolution);
        assert_eq!(h.stats().dram_reads, 1);
        // Filled into both L1I and L2 (inclusive).
        assert!(h.l1i.contains(100));
        assert!(h.l2.contains(100));
        assert!(h.check_inclusion());
    }

    #[test]
    fn second_access_after_ready_hits_l1() {
        let mut h = tiny();
        h.access_instr(100, 0, false);
        let a = h.access_instr(100, 200, false);
        assert_eq!(a.served_by, ServedBy::L1);
        assert_eq!(a.ready_at, 202);
    }

    #[test]
    fn demand_joins_inflight_prefetch() {
        let mut h = tiny();
        let p = h.access_instr(100, 0, true); // prefetch, ready at 150
        let d = h.access_instr(100, 10, false); // demand joins
        assert_eq!(d.served_by, ServedBy::InFlight);
        assert_eq!(d.ready_at, p.ready_at);
        assert_eq!(h.stats().inflight_joins, 1);
        // The join counted an L1I demand miss but no extra DRAM read.
        assert_eq!(h.l1i.stats().instr_misses, 1);
        assert_eq!(h.stats().dram_reads, 1);
    }

    #[test]
    fn l2_hit_after_l1i_eviction() {
        let mut h = tiny();
        // L1I: 2 sets x 2 ways. Lines 0, 2, 4 map to L1I set 0.
        h.access_instr(0, 0, false);
        h.access_instr(2, 200, false);
        h.access_instr(4, 400, false); // evicts line 0 from L1I
        assert!(!h.l1i.contains(0));
        assert!(h.l2.contains(0));
        let a = h.access_instr(0, 600, false);
        assert_eq!(a.served_by, ServedBy::L2);
        assert_eq!(a.ready_at, 612);
    }

    #[test]
    fn exclusive_l3_receives_l2_victims_and_gives_them_back() {
        let mut h = tiny();
        // L2: 4 sets x 4 ways. Lines 0,4,8,12,16 map to L2 set 0.
        let lines = [0u64, 4, 8, 12, 16];
        let mut t = 0;
        for &l in &lines {
            h.access_instr(l, t, false);
            t += 1000;
        }
        // One of the first lines got evicted from L2 into L3.
        assert!(h.check_exclusivity());
        let in_l3: Vec<u64> = h.l3.iter_valid().map(|l| l.tag).collect();
        assert_eq!(in_l3.len(), 1);
        let victim = in_l3[0];
        // Re-access: must be served by L3 and move back (exclusivity).
        let a = h.access_instr(victim, t, false);
        assert_eq!(a.served_by, ServedBy::L3);
        assert!(!h.l3.contains(victim));
        assert!(h.l2.contains(victim));
        // SFL bit set on the L2 copy.
        let set = (victim as usize) & (h.l2.sets() - 1);
        let sfl =
            h.l2.set_slice(set)
                .iter()
                .find(|l| l.tag == victim)
                .unwrap()
                .sfl;
        assert!(sfl);
        assert!(h.check_exclusivity());
        assert!(h.check_inclusion());
    }

    #[test]
    fn l2_eviction_back_invalidates_l1() {
        let mut h = tiny();
        let lines = [0u64, 4, 8, 12, 16];
        let mut t = 0;
        for &l in &lines {
            h.access_instr(l, t, false);
            t += 1000;
        }
        assert!(h.check_inclusion());
        // Whichever line left L2 must not be in L1I.
        for &l in &lines {
            if !h.l2.contains(l) {
                assert!(!h.l1i.contains(l), "line {l} violates inclusion");
            }
        }
    }

    #[test]
    fn priority_transfers_to_l2_on_l1i_eviction() {
        let mut h = tiny();
        h.access_instr(0, 0, false);
        assert!(h.mark_instr_priority(0)); // sets P in L1I
        assert_eq!(h.l1i.priority_of(0), Some(true));
        assert_eq!(h.l2.priority_of(0), Some(false));
        // Evict line 0 from L1I (set 0 holds lines 0, 2, 4).
        h.access_instr(2, 1000, false);
        h.access_instr(4, 2000, false);
        assert!(!h.l1i.contains(0));
        assert_eq!(h.l2.priority_of(0), Some(true), "P bit must transfer");
    }

    #[test]
    fn mark_priority_falls_back_to_l2() {
        let mut h = tiny();
        h.access_instr(0, 0, false);
        h.access_instr(2, 1000, false);
        h.access_instr(4, 2000, false); // line 0 now only in L2
        assert!(h.mark_instr_priority(0));
        assert_eq!(h.l2.priority_of(0), Some(true));
        assert!(!h.mark_instr_priority(0xdead));
    }

    #[test]
    fn reset_clears_all_priorities() {
        let mut h = tiny();
        h.access_instr(0, 0, false);
        h.mark_instr_priority(0);
        h.reset_instr_priorities();
        assert_eq!(h.l1i.priority_of(0), Some(false));
    }

    #[test]
    fn dirty_data_writes_back_through_hierarchy() {
        let mut h = tiny();
        // Store to line 1000.
        h.access_data(1000, 0, true, false);
        // L1D set of 1000: evict it by touching two more lines of that set.
        h.access_data(1000 + 2, 1000, false, false);
        h.access_data(1000 + 4, 2000, false, false);
        if !h.l1d.contains(1000) {
            // Dirty bit must have migrated to the L2 copy.
            let set = (1000usize) & (h.l2.sets() - 1);
            let l = h.l2.set_slice(set).iter().find(|l| l.tag == 1000).unwrap();
            assert!(l.dirty);
        }
    }

    #[test]
    fn ideal_l2_serves_non_compulsory_misses_fast() {
        let mut cfg = tiny_cfg();
        cfg.ideal_l2_instr = true;
        let pol = PolicyKind::TreePlru.build(cfg.l2.sets(), cfg.l2.ways, 9);
        let mut h = Hierarchy::with_l2_policy(cfg, pol);
        // Compulsory miss: full latency.
        let a = h.access_instr(0, 0, false);
        assert_eq!(a.ready_at, 150);
        // Push line 0 out of L2 (and thus L1I) with conflicting lines.
        let mut t = 1000;
        for l in [4u64, 8, 12, 16, 20] {
            h.access_instr(l, t, false);
            t += 1000;
        }
        assert!(!h.l2.contains(0));
        // Non-compulsory L2 miss: served at L2-hit latency.
        let b = h.access_instr(0, t, false);
        assert_eq!(b.ready_at - t, 12);
        assert!(h.stats().ideal_l2_saves >= 1);
    }

    #[test]
    fn nlp_l2_prefetches_next_line() {
        let mut cfg = tiny_cfg();
        cfg.l2_nlp = true;
        let pol = PolicyKind::TreePlru.build(cfg.l2.sets(), cfg.l2.ways, 9);
        let mut h = Hierarchy::with_l2_policy(cfg, pol);
        h.access_instr(100, 0, false);
        assert!(
            h.l2.contains(101),
            "NLP should have pulled line 101 into L2"
        );
        assert!(!h.l1i.contains(101), "L2 NLP must not fill L1I");
        assert!(h.stats().nlp_issued >= 1);
    }

    #[test]
    fn nlp_l1d_prefetches_full_path() {
        let mut cfg = tiny_cfg();
        cfg.l1d_nlp = true;
        let pol = PolicyKind::TreePlru.build(cfg.l2.sets(), cfg.l2.ways, 9);
        let mut h = Hierarchy::with_l2_policy(cfg, pol);
        h.access_data(500, 0, false, false);
        assert!(h.l1d.contains(501));
        assert!(h.l2.contains(501));
        assert!(h.check_inclusion());
    }

    #[test]
    fn footprint_counts_unique_instruction_lines() {
        let mut h = tiny();
        h.access_instr(1, 0, false);
        h.access_instr(2, 10, false);
        h.access_instr(1, 20, false);
        h.access_data(999, 30, false, false);
        assert_eq!(h.instr_footprint_lines(), 2);
    }

    #[test]
    fn invariants_hold_under_random_traffic() {
        let mut h = tiny();
        let mut rng = crate::rng::XorShift64::new(0xabcdef);
        let mut t = 0u64;
        for _ in 0..5000 {
            t += 3;
            match rng.next_below(4) {
                0 => {
                    h.access_instr(rng.next_below(64), t, false);
                }
                1 => {
                    h.access_instr(rng.next_below(64), t, true);
                }
                2 => {
                    h.access_data(1000 + rng.next_below(64), t, false, false);
                }
                _ => {
                    h.access_data(1000 + rng.next_below(64), t, true, false);
                }
            }
        }
        assert!(h.check_inclusion(), "inclusion violated");
        assert!(h.check_exclusivity(), "exclusivity violated");
    }

    #[test]
    fn audit_is_clean_under_random_traffic_and_detects_breakage() {
        let mut h = tiny();
        let mut rng = crate::rng::XorShift64::new(0x517e);
        let mut t = 0u64;
        for _ in 0..3000 {
            t += 3;
            match rng.next_below(3) {
                0 => {
                    h.access_instr(rng.next_below(64), t, false);
                }
                1 => {
                    h.access_data(1000 + rng.next_below(64), t, false, false);
                }
                _ => {
                    h.access_data(1000 + rng.next_below(64), t, true, false);
                }
            }
        }
        assert_eq!(h.audit(), Vec::new());
        // Break inclusion through the public API: drop an L2 line out from
        // under its L1I copy.
        let l1_line = h.l1i.iter_valid().next().expect("L1I populated").tag;
        h.l2.invalidate(l1_line);
        let violations = h.audit();
        assert!(
            violations
                .iter()
                .any(|v| v.invariant == "inclusion" && v.detail == l1_line),
            "expected an inclusion violation for line {l1_line:#x}: {violations:?}"
        );
    }
}

#[cfg(test)]
mod bypass_tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::line::LineState;
    use crate::policy::AccessInfo;

    /// A policy that bypasses every instruction fill — exercises the
    /// hierarchy's streamed-fetch path.
    #[derive(Debug)]
    struct AlwaysBypass;

    impl crate::policy::ReplacementPolicy for AlwaysBypass {
        fn name(&self) -> &'static str {
            "always-bypass"
        }
        fn on_hit(&mut self, _: usize, _: usize, _: &[LineState], _: &AccessInfo) {}
        fn on_fill(&mut self, _: usize, _: usize, _: &[LineState], _: &AccessInfo) {}
        fn victim(&mut self, _: usize, lines: &[LineState], _: &AccessInfo) -> usize {
            lines.iter().position(|l| l.valid).expect("valid line")
        }
        fn should_bypass(&mut self, _: usize, _: &[LineState], info: &AccessInfo) -> bool {
            info.kind.is_instruction()
        }
    }

    fn tiny_cfg() -> HierarchyConfig {
        HierarchyConfig {
            l1i: CacheConfig::new("l1i", 2 * 2 * 64, 2, 2),
            l1d: CacheConfig::new("l1d", 2 * 2 * 64, 2, 2),
            l2: CacheConfig::new("l2", 4 * 4 * 64, 4, 12),
            l3: CacheConfig::new("l3", 8 * 4 * 64, 4, 32),
            dram_latency: 150,
            l1d_nlp: false,
            l2_nlp: false,
            l3_nlp: false,
            ideal_l2_instr: false,
            seed: 7,
        }
    }

    #[test]
    fn bypassed_instruction_fetch_streams_uncached() {
        let cfg = tiny_cfg();
        let mut h = Hierarchy::with_l2_policy(
            cfg,
            Box::new(AlwaysBypass) as Box<dyn crate::policy::ReplacementPolicy>,
        );
        let m = h.access_instr(100, 0, false);
        // Served from memory, full latency, but installed nowhere.
        assert_eq!(m.served_by, ServedBy::Memory);
        assert!(
            !m.needs_resolution,
            "bypassed fills have nothing to resolve"
        );
        assert!(!h.l1i.contains(100), "L1I fill must be skipped (inclusion)");
        assert!(!h.l2.contains(100));
        assert!(h.check_inclusion());
        // A repeat access misses again (nothing was cached).
        let m2 = h.access_instr(100, 1_000, false);
        assert_eq!(m2.served_by, ServedBy::Memory);
        assert!(h.l2.stats().bypasses >= 2);
    }

    #[test]
    fn bypassing_policy_still_caches_data() {
        let cfg = tiny_cfg();
        let mut h = Hierarchy::with_l2_policy(
            cfg,
            Box::new(AlwaysBypass) as Box<dyn crate::policy::ReplacementPolicy>,
        );
        h.access_data(500, 0, false, false);
        assert!(h.l1d.contains(500));
        assert!(h.l2.contains(500));
        assert!(h.check_inclusion());
    }

    #[test]
    fn sfl_victim_reinserts_at_mru_in_l3() {
        // A line served from L3 gets its SFL bit; when evicted from L2 it
        // re-enters L3 "at the MRU position" (RRPV 0 under DRRIP), so it
        // must survive a subsequent L3 eviction round against distant lines.
        let cfg = tiny_cfg();
        let pol = PolicyKind::TreePlru.build(cfg.l2.sets(), cfg.l2.ways, 9);
        let mut h = Hierarchy::with_l2_policy(cfg, pol);
        let mut t = 0;
        // Fill L2 set 0 and push line 0 out to L3, then bring it back
        // (SFL set), then evict it again.
        for &l in &[0u64, 4, 8, 12, 16] {
            h.access_instr(l, t, false);
            t += 1000;
        }
        let victim =
            h.l3.iter_valid()
                .map(|l| l.tag)
                .next()
                .expect("one L2 victim in L3");
        h.access_instr(victim, t, false); // L3 hit -> SFL on L2 copy
        t += 1000;
        // Force it out of L2 again: it should land in L3 at MRU.
        for &l in &[20u64, 24, 28, 32, 36] {
            h.access_instr(l, t, false);
            t += 1000;
        }
        assert!(
            h.l3.contains(victim),
            "SFL victim must be back in L3 after its second L2 eviction"
        );
        assert!(h.check_exclusivity());
    }
}
