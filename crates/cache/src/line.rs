//! Per-line cache metadata.

/// Whether a line holds instructions or data.
///
/// The unified L2 and L3 hold both; the paper's policies treat the two kinds
/// differently (EMISSARY protects only instruction lines; DCLIP prioritizes
/// instruction lines; the `M:` treatments apply to instruction lines while
/// data lines keep normal MRU insertion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineKind {
    /// An instruction cache line.
    Instruction,
    /// A data cache line.
    Data,
}

impl LineKind {
    /// True for [`LineKind::Instruction`].
    pub fn is_instruction(self) -> bool {
        matches!(self, LineKind::Instruction)
    }
}

impl std::fmt::Display for LineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LineKind::Instruction => f.write_str("instruction"),
            LineKind::Data => f.write_str("data"),
        }
    }
}

/// State of one cache way.
///
/// `tag` stores the full line address rather than a truncated tag; this
/// simplifies back-invalidation and victim propagation between levels and
/// costs nothing in a simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineState {
    /// Full line address of the resident line (meaningful when `valid`).
    pub tag: u64,
    /// Whether the way holds a line.
    pub valid: bool,
    /// Whether the line was written (needs writeback on eviction).
    pub dirty: bool,
    /// Instruction or data line.
    pub kind: LineKind,
    /// EMISSARY priority bit (`P`). Set when the line's miss caused a
    /// selected decode starvation; preserved in L2 on L1I eviction (§3).
    pub priority: bool,
    /// L2-only "Served From Last-level" bit: set when the fill was served by
    /// the L3 rather than memory; controls L3 re-insertion position (§5.1).
    pub sfl: bool,
    /// Whether the fill was triggered by a prefetch rather than a demand.
    pub prefetched: bool,
}

impl LineState {
    /// An invalid (empty) way.
    pub const fn invalid() -> Self {
        Self {
            tag: 0,
            valid: false,
            dirty: false,
            kind: LineKind::Data,
            priority: false,
            sfl: false,
            prefetched: false,
        }
    }

    /// True when the way holds a valid high-priority (`P = 1`) line.
    pub fn is_high_priority(&self) -> bool {
        self.valid && self.priority
    }

    /// True when the way holds a valid instruction line.
    pub fn is_instruction(&self) -> bool {
        self.valid && self.kind.is_instruction()
    }
}

impl Default for LineState {
    fn default() -> Self {
        Self::invalid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_line_has_no_priority() {
        let mut l = LineState::invalid();
        l.priority = true; // stale metadata on an invalid way must not count
        assert!(!l.is_high_priority());
        assert!(!l.is_instruction());
    }

    #[test]
    fn kind_display_and_predicate() {
        assert!(LineKind::Instruction.is_instruction());
        assert!(!LineKind::Data.is_instruction());
        assert_eq!(LineKind::Instruction.to_string(), "instruction");
    }
}
