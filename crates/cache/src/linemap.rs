//! Open-addressing hash map and set keyed by line addresses.
//!
//! The simulator's miss path tracks small, hot, integer-keyed state: the
//! in-flight (MSHR) tables in the hierarchy and the pending-miss flag
//! table in the machine. `std::collections::HashMap` pays SipHash plus a
//! cache-unfriendly bucket layout on every probe, which shows up directly
//! in end-to-end simulator throughput. [`LineMap`] replaces it on those
//! paths with a flat `Vec` of slots, a single multiply-based hash
//! (Fibonacci hashing by `0x9E37_79B9_7F4A_7C15`), linear probing, and
//! backward-shift deletion (no tombstones, so long-running maps with
//! constant insert/remove churn never degrade).
//!
//! The table is *not* a general-purpose map: keys are `u64` line
//! addresses, there is no entry API beyond [`LineMap::get_or_insert`],
//! and iteration order is unspecified. Determinism is preserved because
//! the simulator never iterates these tables in a way that feeds back
//! into simulated behaviour.

/// Multiplicative hash constant (2^64 / φ, the Fibonacci hashing ratio).
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// Initial slot count; must be a power of two.
const INITIAL_CAPACITY: usize = 16;

/// An open-addressing map from line address to `V` with linear probing
/// and backward-shift deletion. See the module docs for the rationale.
#[derive(Debug, Clone)]
pub struct LineMap<V> {
    /// Power-of-two slot array; `None` is an empty slot.
    slots: Vec<Option<(u64, V)>>,
    /// Number of occupied slots.
    len: usize,
}

impl<V> Default for LineMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> LineMap<V> {
    /// Creates an empty map with the default initial capacity.
    pub fn new() -> Self {
        LineMap {
            slots: (0..INITIAL_CAPACITY).map(|_| None).collect(),
            len: 0,
        }
    }

    /// Number of entries in the map.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every entry, keeping the allocated table.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.len = 0;
    }

    /// Home slot index for `key` in the current table.
    #[inline]
    fn home(&self, key: u64) -> usize {
        let h = key.wrapping_mul(HASH_MUL);
        // High bits carry the multiply's mixing; shift them into range.
        (h >> (64 - self.slots.len().trailing_zeros())) as usize
    }

    /// Index of the slot holding `key`, if present.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        let mask = self.slots.len() - 1;
        let mut i = self.home(key);
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k == key => return Some(i),
                Some(_) => i = (i + 1) & mask,
                None => return None,
            }
        }
    }

    /// Returns a reference to the value for `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.find(key)
            .map(|i| &self.slots[i].as_ref().expect("found slot occupied").1)
    }

    /// Returns a mutable reference to the value for `key`.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.find(key)
            .map(|i| &mut self.slots[i].as_mut().expect("found slot occupied").1)
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Inserts `value` under `key`, returning the previous value if any.
    #[inline]
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        self.grow_if_needed();
        let mask = self.slots.len() - 1;
        let mut i = self.home(key);
        loop {
            match &mut self.slots[i] {
                Some((k, v)) if *k == key => return Some(std::mem::replace(v, value)),
                Some(_) => i = (i + 1) & mask,
                empty @ None => {
                    *empty = Some((key, value));
                    self.len += 1;
                    return None;
                }
            }
        }
    }

    /// Returns a mutable reference to the value for `key`, inserting
    /// `default` first if absent (the map's only entry-style API).
    #[inline]
    pub fn get_or_insert(&mut self, key: u64, default: V) -> &mut V {
        self.grow_if_needed();
        let mask = self.slots.len() - 1;
        let mut i = self.home(key);
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k == key => break,
                Some(_) => i = (i + 1) & mask,
                None => {
                    self.slots[i] = Some((key, default));
                    self.len += 1;
                    break;
                }
            }
        }
        &mut self.slots[i].as_mut().expect("slot just filled").1
    }

    /// Removes `key`, returning its value if present. Uses backward-shift
    /// deletion: subsequent probe-chain entries slide back so lookups
    /// never cross a tombstone.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let mut hole = self.find(key)?;
        let (_, value) = self.slots[hole].take().expect("found slot occupied");
        self.len -= 1;
        let mask = self.slots.len() - 1;
        let mut i = hole;
        loop {
            i = (i + 1) & mask;
            let Some((k, _)) = self.slots[i] else { break };
            // Move the entry back iff the hole lies between its home slot
            // and its current slot (cyclically); otherwise the entry is
            // already as close to home as it can get.
            let home = self.home(k);
            if (i.wrapping_sub(home) & mask) >= (i.wrapping_sub(hole) & mask) {
                self.slots[hole] = self.slots[i].take();
                hole = i;
            }
        }
        Some(value)
    }

    /// Doubles the table when load reaches 7/8, reinserting every entry.
    fn grow_if_needed(&mut self) {
        if (self.len + 1) * 8 < self.slots.len() * 7 {
            return;
        }
        let doubled = (0..self.slots.len() * 2).map(|_| None).collect();
        let old = std::mem::replace(&mut self.slots, doubled);
        self.len = 0;
        let mask = self.slots.len() - 1;
        for (key, value) in old.into_iter().flatten() {
            let mut i = self.home(key);
            while self.slots[i].is_some() {
                i = (i + 1) & mask;
            }
            self.slots[i] = Some((key, value));
            self.len += 1;
        }
    }
}

/// An open-addressing set of line addresses backed by [`LineMap`].
#[derive(Debug, Clone, Default)]
pub struct LineSet {
    map: LineMap<()>,
}

impl LineSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        LineSet::default()
    }

    /// Number of lines in the set.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Adds `line`; returns `true` if it was not already present
    /// (matching `HashSet::insert`).
    #[inline]
    pub fn insert(&mut self, line: u64) -> bool {
        self.map.insert(line, ()).is_none()
    }

    /// Whether `line` is in the set.
    #[inline]
    pub fn contains(&self, line: u64) -> bool {
        self.map.contains_key(line)
    }

    /// Removes `line`; returns `true` if it was present.
    pub fn remove(&mut self, line: u64) -> bool {
        self.map.remove(line).is_some()
    }

    /// Removes every line, keeping the allocated table.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShift64;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = LineMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(0x40, 1u64), None);
        assert_eq!(m.insert(0x80, 2), None);
        assert_eq!(m.insert(0x40, 3), Some(1));
        assert_eq!(m.get(0x40), Some(&3));
        assert_eq!(m.get(0x80), Some(&2));
        assert_eq!(m.get(0xc0), None);
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(0x40), Some(3));
        assert_eq!(m.remove(0x40), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn zero_key_is_a_valid_line_address() {
        let mut m = LineMap::new();
        m.insert(0, 7u32);
        assert_eq!(m.get(0), Some(&7));
        assert_eq!(m.remove(0), Some(7));
        assert!(m.is_empty());
    }

    #[test]
    fn get_or_insert_inserts_once_then_returns_existing() {
        let mut m = LineMap::new();
        *m.get_or_insert(5, 10u64) += 1;
        *m.get_or_insert(5, 99) += 1;
        assert_eq!(m.get(5), Some(&12));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn growth_preserves_all_entries() {
        let mut m = LineMap::new();
        for i in 0..1000u64 {
            m.insert(i * 64, i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(i * 64), Some(&i), "key {i} lost in growth");
        }
    }

    #[test]
    fn clear_keeps_table_usable() {
        let mut m = LineMap::new();
        for i in 0..100u64 {
            m.insert(i, i);
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(5), None);
        m.insert(5, 50);
        assert_eq!(m.get(5), Some(&50));
    }

    /// Backward-shift deletion is the subtle part: drive the map with a
    /// deterministic random op mix over a small key space (to force long
    /// probe chains and wrap-around) and mirror every op into `HashMap`.
    #[test]
    fn random_ops_match_std_hashmap() {
        let mut rng = XorShift64::new(0xbeef);
        let mut ours: LineMap<u64> = LineMap::new();
        let mut theirs: HashMap<u64, u64> = HashMap::new();
        for step in 0..100_000u64 {
            // 48 distinct keys cluster around the 16..128-slot tables.
            let key = rng.next_u64() % 48;
            match rng.next_u64() % 4 {
                0 | 1 => {
                    assert_eq!(
                        ours.insert(key, step),
                        theirs.insert(key, step),
                        "insert({key}) at step {step}"
                    );
                }
                2 => {
                    assert_eq!(
                        ours.remove(key),
                        theirs.remove(&key),
                        "remove({key}) at step {step}"
                    );
                }
                _ => {
                    assert_eq!(ours.get(key), theirs.get(&key), "get({key}) at step {step}");
                }
            }
            assert_eq!(ours.len(), theirs.len(), "len at step {step}");
        }
        for (k, v) in &theirs {
            assert_eq!(ours.get(*k), Some(v), "final check key {k}");
        }
    }

    #[test]
    fn line_set_matches_hashset_semantics() {
        let mut s = LineSet::new();
        assert!(s.insert(0x1000));
        assert!(!s.insert(0x1000));
        assert!(s.contains(0x1000));
        assert!(!s.contains(0x2000));
        assert_eq!(s.len(), 1);
        assert!(s.remove(0x1000));
        assert!(!s.remove(0x1000));
        assert!(s.is_empty());
    }
}
