//! Structural invariant auditing (the `EMISSARY_AUDIT=1` checker).
//!
//! The auditor walks cache state *read-only* at epoch boundaries (warmup
//! end, sample boundaries, measurement end) and reports anything that
//! violates a structural invariant of the model:
//!
//! * `set_occupancy` — valid lines in a set never exceed the associativity.
//! * `line_placement` — a resident line's address maps to the set holding it.
//! * `duplicate_line` — a line address is resident at most once per cache.
//! * `priority_on_data` — the EMISSARY `P` bit is only ever set on
//!   instruction lines (every marking path is instruction-side).
//! * `policy_state` — the replacement policy's own metadata is in range
//!   (RRPV values within 2 bits; EMISSARY dual-recency sized to the cache),
//!   via [`crate::policy::ReplacementPolicy::audit_set`].
//! * `inclusion` / `exclusivity` — hierarchy-level pairings (every valid L1
//!   line resident in the inclusive L2; the exclusive victim L3 disjoint
//!   from L2).
//!
//! Note on Algorithm 1's protection bound: the paper caps *protection*, not
//! *marking* — `P` bits are set unconditionally when a selected starvation
//! occurs, and a set's high-priority population may transiently exceed `N`
//! between evictions (that saturation is §6's motivation for the periodic
//! reset). The auditor therefore bounds priority occupancy by the
//! associativity and leaves the `count <= N` decision rule to the
//! [`Protect`](emissary_obs::TraceEvent::Protect) event stream, where it is
//! a per-decision fact rather than a standing-state invariant.

use emissary_obs::Level;

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// Stable snake_case invariant name (matches the
    /// [`emissary_obs::TraceEvent::AuditViolation`] `invariant` field).
    pub invariant: &'static str,
    /// Hierarchy level the violation was found at.
    pub level: Level,
    /// Set index involved (0 for whole-cache invariants).
    pub set: usize,
    /// Invariant-specific numeric detail (offending count, way, or line
    /// address).
    pub detail: u64,
    /// Human-readable description for diagnostics.
    pub message: String,
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} set {}: {}",
            self.level.as_str(),
            self.invariant,
            self.set,
            self.message
        )
    }
}
