//! Per-cache event counters.

use emissary_obs::LocalMetrics;

use crate::line::LineKind;

/// Counters maintained by a single [`crate::cache::Cache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand instruction hits.
    pub instr_hits: u64,
    /// Demand instruction misses.
    pub instr_misses: u64,
    /// Demand data hits.
    pub data_hits: u64,
    /// Demand data misses.
    pub data_misses: u64,
    /// Instruction prefetch hits (already present).
    pub prefetch_instr_hits: u64,
    /// Instruction prefetch misses (triggered a fill).
    pub prefetch_instr_misses: u64,
    /// Data prefetch hits.
    pub prefetch_data_hits: u64,
    /// Data prefetch misses.
    pub prefetch_data_misses: u64,
    /// Lines inserted.
    pub fills: u64,
    /// Valid lines displaced by fills.
    pub evictions: u64,
    /// Dirty lines displaced (writeback traffic).
    pub writebacks: u64,
    /// Lines removed by external invalidation.
    pub invalidations: u64,
    /// Hits (demand or prefetch) on high-priority (`P = 1`) lines.
    pub priority_hits: u64,
    /// Fills refused by a bypassing policy.
    pub bypasses: u64,
}

impl CacheStats {
    /// Records a demand access outcome.
    pub fn record_demand(&mut self, kind: LineKind, hit: bool) {
        match (kind, hit) {
            (LineKind::Instruction, true) => self.instr_hits += 1,
            (LineKind::Instruction, false) => self.instr_misses += 1,
            (LineKind::Data, true) => self.data_hits += 1,
            (LineKind::Data, false) => self.data_misses += 1,
        }
    }

    /// Records a prefetch access outcome.
    pub fn record_prefetch(&mut self, kind: LineKind, hit: bool) {
        match (kind, hit) {
            (LineKind::Instruction, true) => self.prefetch_instr_hits += 1,
            (LineKind::Instruction, false) => self.prefetch_instr_misses += 1,
            (LineKind::Data, true) => self.prefetch_data_hits += 1,
            (LineKind::Data, false) => self.prefetch_data_misses += 1,
        }
    }

    /// Total prefetch hits (both kinds).
    pub fn prefetch_hits(&self) -> u64 {
        self.prefetch_instr_hits + self.prefetch_data_hits
    }

    /// Total prefetch misses (both kinds).
    pub fn prefetch_misses(&self) -> u64 {
        self.prefetch_instr_misses + self.prefetch_data_misses
    }

    /// Instruction-side misses including fetch-directed prefetch misses;
    /// with an FDIP front-end most instruction-line fills are initiated by
    /// the prefetcher just ahead of the demand fetch, so instruction MPKI
    /// counts both (the demand would have missed without the prefetch).
    pub fn instr_stream_misses(&self) -> u64 {
        self.instr_misses + self.prefetch_instr_misses
    }

    /// Total demand misses (both kinds).
    pub fn demand_misses(&self) -> u64 {
        self.instr_misses + self.data_misses
    }

    /// Total demand accesses (both kinds).
    pub fn demand_accesses(&self) -> u64 {
        self.instr_hits + self.instr_misses + self.data_hits + self.data_misses
    }

    /// Total accesses including prefetches.
    pub fn total_accesses(&self) -> u64 {
        self.demand_accesses() + self.prefetch_hits() + self.prefetch_misses()
    }

    /// Demand miss ratio in `[0, 1]` (0 when no accesses).
    pub fn miss_ratio(&self) -> f64 {
        let a = self.demand_accesses();
        if a == 0 {
            0.0
        } else {
            self.demand_misses() as f64 / a as f64
        }
    }

    /// Exports the counters into metrics cells, labelled with the cache
    /// `level` (e.g. `l2`). Called once per run after simulation ends.
    pub fn metrics_into(&self, level: &str, m: &mut LocalMetrics) {
        let labels: &[(&'static str, &str)] = &[("level", level)];
        let pairs: &[(&'static str, u64)] = &[
            (
                "emissary_cache_demand_hits_total",
                self.instr_hits + self.data_hits,
            ),
            ("emissary_cache_demand_misses_total", self.demand_misses()),
            ("emissary_cache_prefetch_hits_total", self.prefetch_hits()),
            (
                "emissary_cache_prefetch_misses_total",
                self.prefetch_misses(),
            ),
            ("emissary_cache_fills_total", self.fills),
            ("emissary_cache_evictions_total", self.evictions),
            ("emissary_cache_writebacks_total", self.writebacks),
            ("emissary_cache_invalidations_total", self.invalidations),
            ("emissary_cache_priority_hits_total", self.priority_hits),
            ("emissary_cache_bypasses_total", self.bypasses),
        ];
        for &(name, v) in pairs {
            m.count(name, labels, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_counters_split_by_kind() {
        let mut s = CacheStats::default();
        s.record_demand(LineKind::Instruction, true);
        s.record_demand(LineKind::Instruction, false);
        s.record_demand(LineKind::Data, false);
        assert_eq!(s.instr_hits, 1);
        assert_eq!(s.instr_misses, 1);
        assert_eq!(s.data_misses, 1);
        assert_eq!(s.demand_misses(), 2);
        assert_eq!(s.demand_accesses(), 3);
        assert!((s.miss_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn prefetches_do_not_affect_demand_ratio() {
        let mut s = CacheStats::default();
        s.record_prefetch(LineKind::Instruction, false);
        s.record_prefetch(LineKind::Data, true);
        assert_eq!(s.demand_accesses(), 0);
        assert_eq!(s.total_accesses(), 2);
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.instr_stream_misses(), 1);
    }
}
