//! Address arithmetic: byte addresses, line addresses, set indexing.
//!
//! All caches in this reproduction use 64-byte lines (Table 4), so a *line
//! address* is a byte address shifted right by [`LINE_SHIFT`]. Caches index
//! sets with the low bits of the line address.

/// log2 of the cache line size in bytes.
pub const LINE_SHIFT: u32 = 6;

/// Cache line size in bytes (64 B across the hierarchy, per Table 4).
pub const LINE_BYTES: u64 = 1 << LINE_SHIFT;

/// Converts a byte address to its line address.
#[inline]
pub fn line_of(byte_addr: u64) -> u64 {
    byte_addr >> LINE_SHIFT
}

/// First byte address of a line.
#[inline]
pub fn line_base(line_addr: u64) -> u64 {
    line_addr << LINE_SHIFT
}

/// Set index for `line_addr` in a cache with `sets` sets.
///
/// `sets` must be a power of two (checked by [`crate::config::CacheConfig`]).
#[inline]
pub fn set_index(line_addr: u64, sets: usize) -> usize {
    (line_addr as usize) & (sets - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_math_roundtrips() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 1);
        assert_eq!(line_base(line_of(0x1234)), 0x1200 & !0x3f);
    }

    #[test]
    fn set_index_wraps_power_of_two() {
        assert_eq!(set_index(0, 64), 0);
        assert_eq!(set_index(64, 64), 0);
        assert_eq!(set_index(65, 64), 1);
        assert_eq!(set_index(63, 64), 63);
    }
}
