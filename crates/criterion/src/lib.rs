//! Offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build environment has no network access to a cargo registry, so
//! this dependency-free crate implements the subset of criterion's API our
//! benches use: [`Criterion::benchmark_group`], chained
//! `warm_up_time`/`measurement_time`/`sample_size` builders,
//! `bench_function` with a [`Bencher`] whose `iter` measures the closure,
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Statistics are intentionally simple: each benchmark runs one warm-up
//! iteration plus `sample_size` timed iterations (bounded by
//! `measurement_time`) and prints min/mean/max per-iteration wall time.
//!
//! Like real criterion, passing `--test` on the command line (i.e.
//! `cargo bench -- --test`) runs each benchmark for a single iteration
//! as a smoke test instead of a full measurement.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimizer barrier.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level harness handle, passed to every bench function.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    /// Reads the command line: `--test` (as passed through by
    /// `cargo bench -- --test`) selects single-iteration smoke mode.
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
            test_mode: self.test_mode,
        }
    }

    /// Runs a stand-alone benchmark (group of one).
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut group = self.benchmark_group("default");
        group.bench_function(name, f);
        group.finish();
        self
    }
}

/// A named group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the stub's single warm-up
    /// iteration is not time-bounded.
    pub fn warm_up_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Caps total measurement wall time for each benchmark.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Times `f` and prints a one-line summary. In `--test` mode the
    /// benchmark runs for one unmeasured iteration and reports success.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        if self.test_mode {
            let mut bencher = Bencher {
                samples: Vec::new(),
                budget: Duration::ZERO,
                sample_size: 0,
            };
            f(&mut bencher);
            println!("{}/{name}: test mode, 1 iteration ... ok", self.name);
            return;
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: self.measurement_time,
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("{}/{name}: no samples recorded", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().expect("non-empty");
        let max = samples.iter().max().expect("non-empty");
        println!(
            "{}/{name}: {} samples, min {min:?}, mean {mean:?}, max {max:?}",
            self.name,
            samples.len(),
        );
    }

    /// Ends the group (printing happens per benchmark).
    pub fn finish(self) {}
}

/// Runs and times one benchmark's iterations.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once unmeasured, then `sample_size` timed iterations or
    /// until the measurement budget is spent, whichever comes first.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.budget {
                break;
            }
        }
    }
}

/// Bundles bench functions into a runnable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("test");
        g.sample_size(4).measurement_time(Duration::from_secs(1));
        let mut runs = 0usize;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        // One warm-up plus four samples.
        assert_eq!(runs, 5);
    }

    #[test]
    fn test_mode_runs_one_iteration() {
        let mut c = Criterion { test_mode: true };
        let mut g = c.benchmark_group("smoke");
        g.sample_size(100).measurement_time(Duration::from_secs(60));
        let mut runs = 0usize;
        g.bench_function("once", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        assert_eq!(runs, 1);
    }
}
